package server

import (
	"compress/gzip"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
)

// Middleware wraps an http.Handler with one cross-cutting concern.
// The stack is composable: transports pick the layers they need.
type Middleware func(http.Handler) http.Handler

// Chain applies the middlewares so the first listed becomes the
// innermost layer and the last listed the outermost:
//
//	Chain(h, Gzip, RequestLog(l), Recover(l))
//
// serves requests through Recover → RequestLog → Gzip → h.
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for _, mw := range mws {
		if mw != nil {
			h = mw(h)
		}
	}
	return h
}

// Recover converts handler panics into a 500 internal envelope instead
// of tearing down the connection, logging the stack when a logger is
// configured. http.ErrAbortHandler passes through (it is the sanctioned
// way to abort a response).
func Recover(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				if p == http.ErrAbortHandler {
					panic(p)
				}
				if logger != nil {
					logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				}
				writeError(w, api.Errf(api.CodeInternal, http.StatusInternalServerError,
					"internal server error"))
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// RequestLog logs one line per request: method, path, status, duration.
// A nil logger disables the layer entirely (Chain skips nil).
func RequestLog(logger *log.Logger) Middleware {
	if logger == nil {
		return nil
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			logger.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.Status(), time.Since(start).Round(time.Microsecond))
		})
	}
}

// statusWriter records the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Status returns the recorded status (200 if the handler wrote a body
// without an explicit WriteHeader, 0 if it wrote nothing at all).
func (sw *statusWriter) Status() int {
	if sw.status == 0 {
		return http.StatusOK
	}
	return sw.status
}

// Gzip compresses responses for clients that accept it. Query results
// over a few thousand rows are highly repetitive JSON; compressing on
// the way out is a large bandwidth win for dashboard traffic.
func Gzip(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			next.ServeHTTP(w, r)
			return
		}
		w.Header().Add("Vary", "Accept-Encoding")
		gw := &gzipWriter{ResponseWriter: w}
		defer gw.close()
		next.ServeHTTP(gw, r)
	})
}

// gzipPool recycles gzip writers across responses. A fresh
// gzip.Writer allocates close to a megabyte of flate state, and Go's
// default transport asks for gzip on every request — without the pool
// each proxied hop (router→shard, owner→follower) pays that
// allocation per call, and it dominates the replicated-ack profile.
var gzipPool = sync.Pool{New: func() any { return gzip.NewWriter(nil) }}

// gzipWriter lazily starts the gzip stream on the first header or body
// write, so a handler that writes nothing produces no broken empty
// gzip frame headers.
type gzipWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (g *gzipWriter) start() {
	if g.gz == nil {
		g.Header().Del("Content-Length")
		g.Header().Set("Content-Encoding", "gzip")
		g.gz = gzipPool.Get().(*gzip.Writer)
		g.gz.Reset(g.ResponseWriter)
	}
}

func (g *gzipWriter) WriteHeader(code int) {
	g.start()
	g.ResponseWriter.WriteHeader(code)
}

func (g *gzipWriter) Write(b []byte) (int, error) {
	g.start()
	return g.gz.Write(b)
}

func (g *gzipWriter) close() {
	if g.gz != nil {
		_ = g.gz.Close()
		gzipPool.Put(g.gz)
		g.gz = nil
	}
}
