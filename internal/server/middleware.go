package server

import (
	"compress/gzip"
	"encoding/json"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Middleware wraps an http.Handler with one cross-cutting concern.
// The stack is composable: transports pick the layers they need.
type Middleware func(http.Handler) http.Handler

// Chain applies the middlewares so the first listed becomes the
// innermost layer and the last listed the outermost:
//
//	Chain(h, Gzip, RequestLog(l, "text"), Trace, Recover(l))
//
// serves requests through Recover → Trace → RequestLog → Gzip → h.
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for _, mw := range mws {
		if mw != nil {
			h = mw(h)
		}
	}
	return h
}

// Recover converts handler panics into a 500 internal envelope instead
// of tearing down the connection, logging the stack when a logger is
// configured. http.ErrAbortHandler passes through (it is the sanctioned
// way to abort a response).
func Recover(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				if p == http.ErrAbortHandler {
					panic(p)
				}
				if logger != nil {
					logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				}
				writeError(w, r, api.Errf(api.CodeInternal, http.StatusInternalServerError,
					"internal server error"))
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// LogFormat selects the request-log line shape.
const (
	LogText = "text"
	LogJSON = "json"
)

// accessLine is the JSON request-log record. Field order mirrors the
// text format: what happened, how it went, who it was.
type accessLine struct {
	Method  string  `json:"method"`
	Path    string  `json:"path"`
	Route   string  `json:"route,omitempty"`
	Status  int     `json:"status"`
	DurMS   float64 `json:"durMs"`
	TraceID string  `json:"traceId,omitempty"`
	Iface   string  `json:"iface,omitempty"`
}

// RequestLog logs one structured line per request: method, path,
// status, duration, trace id and interface id — as plain text (the
// default) or as one JSON object per line. It must sit inside the
// Trace layer (Trace outermost) so the context already carries the
// trace id. A nil logger disables the layer entirely (Chain skips
// nil); an unknown format falls back to text.
func RequestLog(logger *log.Logger, format string) Middleware {
	if logger == nil {
		return nil
	}
	asJSON := format == LogJSON
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			// Pattern and path values are populated by the mux during
			// ServeHTTP on this same request, so they are readable here.
			trace := obs.TraceID(r.Context())
			iface := r.PathValue("id")
			if asJSON {
				b, err := json.Marshal(accessLine{
					Method:  r.Method,
					Path:    r.URL.Path,
					Route:   r.Pattern,
					Status:  sw.Status(),
					DurMS:   float64(time.Since(start)) / 1e6,
					TraceID: trace,
					Iface:   iface,
				})
				if err == nil {
					logger.Printf("%s", b)
				}
				return
			}
			line := r.Method + " " + r.URL.Path + " "
			logger.Printf("%s%d %s trace=%s iface=%s",
				line, sw.Status(), time.Since(start).Round(time.Microsecond), trace, iface)
		})
	}
}

// Trace ensures every request carries a trace id: a well-formed
// client-supplied Pi-Trace-Id is adopted (that is how an id minted at
// the router edge follows the request onto a shard), anything else is
// replaced with a fresh one. The id is echoed on the response header
// and stored in the request context for the request log, error
// envelopes and the slow-query ring.
func Trace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.TraceHeader)
		if !obs.ValidTraceID(id) {
			id = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, id)
		next.ServeHTTP(w, r.WithContext(obs.WithTrace(r.Context(), id)))
	})
}

// routeMetrics is one route's resolved handle set: a latency histogram
// and a counter per status class. Handles resolve once per route (the
// route set is small and fixed), so steady state is one lock-free
// sync.Map load per request.
type routeMetrics struct {
	dur     *obs.Histogram
	byClass [6]*obs.Counter // index status/100; [0] collects the weird
}

// Metrics records HTTP request counts, durations and status classes
// per route into the registry (families pi_http_requests_total and
// pi_http_request_duration_seconds, route label = mux pattern). A nil
// registry disables the layer.
func Metrics(reg *obs.Registry) Middleware {
	if reg == nil {
		return nil
	}
	durVec := reg.HistogramVec("pi_http_request_duration_seconds",
		"HTTP request latency by route (route = mux pattern).",
		obs.LatencyBuckets, "route")
	cntVec := reg.CounterVec("pi_http_requests_total",
		"HTTP requests by route and status class.", "route", "class")
	classes := [6]string{"0xx", "1xx", "2xx", "3xx", "4xx", "5xx"}
	var routes sync.Map // pattern -> *routeMetrics
	resolve := func(route string) *routeMetrics {
		if rm, ok := routes.Load(route); ok {
			return rm.(*routeMetrics)
		}
		rm := &routeMetrics{dur: durVec.With(route)}
		for i, c := range classes {
			rm.byClass[i] = cntVec.With(route, c)
		}
		got, _ := routes.LoadOrStore(route, rm)
		return got.(*routeMetrics)
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			route := r.Pattern
			if route == "" {
				route = "unmatched"
			}
			rm := resolve(route)
			rm.dur.Observe(time.Since(start))
			if cls := sw.Status() / 100; cls >= 0 && cls < len(rm.byClass) {
				rm.byClass[cls].Inc()
			}
		})
	}
}

// statusWriter records the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Status returns the recorded status (200 if the handler wrote a body
// without an explicit WriteHeader, 0 if it wrote nothing at all).
func (sw *statusWriter) Status() int {
	if sw.status == 0 {
		return http.StatusOK
	}
	return sw.status
}

// Gzip compresses responses for clients that accept it. Query results
// over a few thousand rows are highly repetitive JSON; compressing on
// the way out is a large bandwidth win for dashboard traffic.
func Gzip(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			next.ServeHTTP(w, r)
			return
		}
		w.Header().Add("Vary", "Accept-Encoding")
		gw := &gzipWriter{ResponseWriter: w}
		defer gw.close()
		next.ServeHTTP(gw, r)
	})
}

// gzipPool recycles gzip writers across responses. A fresh
// gzip.Writer allocates close to a megabyte of flate state, and Go's
// default transport asks for gzip on every request — without the pool
// each proxied hop (router→shard, owner→follower) pays that
// allocation per call, and it dominates the replicated-ack profile.
var gzipPool = sync.Pool{New: func() any { return gzip.NewWriter(nil) }}

// gzipWriter lazily starts the gzip stream on the first header or body
// write, so a handler that writes nothing produces no broken empty
// gzip frame headers.
type gzipWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (g *gzipWriter) start() {
	if g.gz == nil {
		g.Header().Del("Content-Length")
		g.Header().Set("Content-Encoding", "gzip")
		g.gz = gzipPool.Get().(*gzip.Writer)
		g.gz.Reset(g.ResponseWriter)
	}
}

func (g *gzipWriter) WriteHeader(code int) {
	g.start()
	g.ResponseWriter.WriteHeader(code)
}

func (g *gzipWriter) Write(b []byte) (int, error) {
	g.start()
	return g.gz.Write(b)
}

func (g *gzipWriter) close() {
	if g.gz != nil {
		_ = g.gz.Close()
		gzipPool.Put(g.gz)
		g.gz = nil
	}
}
