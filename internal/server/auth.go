package server

import (
	"crypto/subtle"
	"net/http"
	"strings"

	"repro/internal/api"
)

// AuthConfig is per-interface bearer-token access control for the
// mutating endpoints (POST query, POST log). Metadata GETs (list,
// detail, page, epoch, healthz, debug) stay open — discovering an
// interface is harmless; executing queries against it and mutating it
// through log ingestion are not.
//
// Token is the server-wide default; InterfaceTokens overrides it per
// interface ID. An empty effective token leaves that interface open,
// so a mixed deployment (public demo dashboard + protected production
// interfaces) is one config.
type AuthConfig struct {
	Token           string
	InterfaceTokens map[string]string
}

// Enabled reports whether any token is configured.
func (a AuthConfig) Enabled() bool { return a.Token != "" || len(a.InterfaceTokens) > 0 }

// tokenFor returns the effective token for the interface ("" = open).
func (a AuthConfig) tokenFor(id string) string {
	if t, ok := a.InterfaceTokens[id]; ok {
		return t
	}
	return a.Token
}

// check validates the request's bearer token for the interface:
// nil when the interface is open or the token matches, unauthorized
// (401) when no token was presented, forbidden (403) when the wrong
// one was.
func (a AuthConfig) check(id string, r *http.Request) *api.Error {
	want := a.tokenFor(id)
	if want == "" {
		return nil
	}
	got, ok := bearerToken(r)
	if !ok {
		return api.Errf(api.CodeUnauthorized, http.StatusUnauthorized,
			"interface %q requires a bearer token", id)
	}
	if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
		return api.Errf(api.CodeForbidden, http.StatusForbidden,
			"token is not valid for interface %q", id)
	}
	return nil
}

// bearerToken extracts the token from "Authorization: Bearer <tok>".
func bearerToken(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", false
	}
	return strings.TrimSpace(h[len(prefix):]), true
}

// protected enforces the auth config in front of a handler for routes
// that carry an {id} path value.
func (s *Server) protected(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if apiErr := s.auth.check(r.PathValue("id"), r); apiErr != nil {
			writeError(w, apiErr)
			return
		}
		next(w, r)
	}
}
