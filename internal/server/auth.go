package server

import (
	"crypto/subtle"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/api"
)

// AuthConfig is per-interface bearer-token access control for the
// mutating endpoints (POST query, POST log). Metadata GETs (list,
// detail, page, epoch, healthz, debug) stay open — discovering an
// interface is harmless; executing queries against it and mutating it
// through log ingestion are not.
//
// Token is the server-wide default; InterfaceTokens overrides it per
// interface ID. An empty effective token leaves that interface open,
// so a mixed deployment (public demo dashboard + protected production
// interfaces) is one config.
type AuthConfig struct {
	Token           string
	InterfaceTokens map[string]string
}

// Enabled reports whether any token is configured.
func (a AuthConfig) Enabled() bool { return a.Token != "" || len(a.InterfaceTokens) > 0 }

// tokenFor returns the effective token for the interface ("" = open).
func (a AuthConfig) tokenFor(id string) string {
	if t, ok := a.InterfaceTokens[id]; ok {
		return t
	}
	return a.Token
}

// Check validates the request's bearer token for the interface:
// nil when the interface is open or the token matches, unauthorized
// (401) when no token was presented, forbidden (403) when the wrong
// one was. Exported for admin surfaces (internal/shard) that enforce
// the same config on their own routes; pass id "" for server-wide
// endpoints guarded by the default token.
func (a AuthConfig) Check(id string, r *http.Request) *api.Error {
	want := a.tokenFor(id)
	if want == "" {
		return nil
	}
	got, ok := bearerToken(r)
	if !ok {
		return api.Errf(api.CodeUnauthorized, http.StatusUnauthorized,
			"interface %q requires a bearer token", id)
	}
	if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
		return api.Errf(api.CodeForbidden, http.StatusForbidden,
			"token is not valid for interface %q", id)
	}
	return nil
}

// ResolveToken loads the effective bearer token from the conventional
// -token / -token-file flag pair every serving binary exposes: the
// file (when named) must exist, be non-empty and not conflict with an
// inline token.
func ResolveToken(token, tokenFile string) (string, error) {
	if tokenFile == "" {
		return token, nil
	}
	if token != "" {
		return "", fmt.Errorf("-token and -token-file are mutually exclusive")
	}
	b, err := os.ReadFile(tokenFile)
	if err != nil {
		return "", fmt.Errorf("read -token-file: %w", err)
	}
	tok := strings.TrimSpace(string(b))
	if tok == "" {
		return "", fmt.Errorf("-token-file %s is empty", tokenFile)
	}
	return tok, nil
}

// bearerToken extracts the token from "Authorization: Bearer <tok>".
func bearerToken(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", false
	}
	return strings.TrimSpace(h[len(prefix):]), true
}

// protected enforces the auth config in front of a handler for routes
// that carry an {id} path value.
func (s *Server) protected(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if apiErr := s.auth.Check(r.PathValue("id"), r); apiErr != nil {
			writeError(w, r, apiErr)
			return
		}
		next(w, r)
	}
}
