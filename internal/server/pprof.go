package server

import (
	"net/http"
	"net/http/pprof"
)

// PprofHandler returns the net/http/pprof surface on an explicit mux,
// for mounting on a private listener (-pprof-addr) separate from the
// serving port: profiles expose heap contents and must never ride the
// public API's address, and building the mux explicitly keeps the
// pprof import from registering handlers on http.DefaultServeMux
// behind the server's back.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartPprof serves PprofHandler on addr in a background goroutine
// when addr is non-empty. Listener failures are reported through
// logf (profiling is an operator convenience; it must not take the
// serving process down).
func StartPprof(addr string, logf func(format string, args ...any)) {
	if addr == "" {
		return
	}
	go func() {
		logf("pprof listening on http://%s/debug/pprof/", addr)
		if err := http.ListenAndServe(addr, PprofHandler()); err != nil {
			logf("pprof listener on %s: %v", addr, err)
		}
	}()
}
