package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// testFixture mines the OLAP interface once; every test builds its own
// registry over the shared immutable interface and dataset.
var fixture struct {
	once  sync.Once
	iface *core.Interface
	db    *engine.DB
	err   error
}

func minedOLAP(t testing.TB) (*core.Interface, *engine.DB) {
	t.Helper()
	fixture.once.Do(func() {
		log := workload.OLAPLog(150, 7)
		fixture.iface, fixture.err = core.Generate(log, core.DefaultOptions())
		fixture.db = engine.OnTimeDB(300)
	})
	if fixture.err != nil {
		t.Fatalf("mine OLAP fixture: %v", fixture.err)
	}
	return fixture.iface, fixture.db
}

func newTestServer(t *testing.T, opts ...Option) (*httptest.Server, *api.Hosted) {
	t.Helper()
	iface, db := minedOLAP(t)
	reg := api.NewRegistry()
	h, err := reg.Add("olap", "OnTime OLAP dashboard", iface, db)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(api.NewService(reg), opts...).Handler())
	t.Cleanup(ts.Close)
	return ts, h
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// postQuery POSTs a query request; on non-200 it returns the decoded
// error envelope.
func postQuery(t *testing.T, url string, req api.QueryRequest) (int, *api.QueryResponse, *api.Error) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e api.Error
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("non-200 without a decodable envelope: %v", err)
		}
		return resp.StatusCode, nil, &e
	}
	var out api.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &out, nil
}

// sliderWidget returns a mined numeric-range widget to exercise
// extrapolation.
func sliderWidget(t testing.TB, iface *core.Interface) *mapper.MappedWidget {
	t.Helper()
	for _, w := range iface.Widgets {
		if w.Domain.IsNumericRange() {
			return w
		}
	}
	t.Fatal("fixture mined no numeric-range widget")
	return nil
}

func TestListInterfaces(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/v1/interfaces", "/interfaces"} {
		var list []api.InterfaceSummary
		if code := getJSON(t, ts.URL+path, &list); code != http.StatusOK {
			t.Fatalf("GET %s status = %d", path, code)
		}
		if len(list) != 1 || list[0].ID != "olap" || list[0].Widgets == 0 {
			t.Fatalf("GET %s list = %+v", path, list)
		}
	}
}

func TestGetInterfaceDetail(t *testing.T) {
	ts, h := newTestServer(t)
	var d api.InterfaceDetail
	if code := getJSON(t, ts.URL+"/v1/interfaces/olap", &d); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if d.InitialSQL == "" || len(d.Widgets) != len(h.Iface().Widgets) {
		t.Fatalf("detail = %+v", d)
	}
	for _, w := range d.Widgets {
		if w.Path == "" || w.Kind == "" || len(w.Options) == 0 {
			t.Fatalf("incomplete widget info: %+v", w)
		}
	}
}

// TestErrorEnvelopeContract: every endpoint's failure modes return the
// documented {code, error} envelope with the right code and status.
func TestErrorEnvelopeContract(t *testing.T) {
	ts, h := newTestServer(t)
	w := sliderWidget(t, h.Iface())
	_, hi := w.Domain.Range()
	outside := hi + 1000

	envelope := func(t *testing.T, resp *http.Response) api.Error {
		t.Helper()
		defer resp.Body.Close()
		var e api.Error
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("response is not the error envelope: %v", err)
		}
		if e.Code == "" || e.Message == "" {
			t.Fatalf("envelope incomplete: %+v", e)
		}
		return e
	}

	t.Run("not found", func(t *testing.T) {
		for _, path := range []string{
			"/v1/interfaces/nope", "/v1/interfaces/nope/epoch", "/v1/interfaces/nope/page",
			"/interfaces/nope",
		} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			e := envelope(t, resp)
			if resp.StatusCode != http.StatusNotFound || e.Code != api.CodeNotFound {
				t.Fatalf("GET %s = %d %q, want 404 not_found", path, resp.StatusCode, e.Code)
			}
		}
		resp, err := http.Post(ts.URL+"/v1/interfaces/nope/query", "application/json",
			strings.NewReader(`{"widgets":[]}`))
		if err != nil {
			t.Fatal(err)
		}
		if e := envelope(t, resp); resp.StatusCode != http.StatusNotFound || e.Code != api.CodeNotFound {
			t.Fatalf("POST query = %d %q, want 404 not_found", resp.StatusCode, e.Code)
		}
	})

	t.Run("bad body", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/interfaces/olap/query", "application/json",
			strings.NewReader(`{"widgets": [`))
		if err != nil {
			t.Fatal(err)
		}
		if e := envelope(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeBadRequest {
			t.Fatalf("= %d %q, want 400 bad_request", resp.StatusCode, e.Code)
		}
	})

	t.Run("bind rejected", func(t *testing.T) {
		code, _, e := postQuery(t, ts.URL+"/v1/interfaces/olap/query", api.QueryRequest{
			Widgets: []api.WidgetBinding{{Path: w.Path.String(), Number: &outside}},
		})
		if code != http.StatusUnprocessableEntity || e.Code != api.CodeBindRejected {
			t.Fatalf("= %d %q, want 422 bind_rejected", code, e.Code)
		}
		if !strings.Contains(e.Message, "domain") {
			t.Fatalf("error %q does not mention the domain", e.Message)
		}
	})

	t.Run("oversized body", func(t *testing.T) {
		big := `{"widgets":[{"path":"` + strings.Repeat("x", maxQueryBody) + `"}]}`
		resp, err := http.Post(ts.URL+"/v1/interfaces/olap/query", "application/json",
			strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		if e := envelope(t, resp); resp.StatusCode != http.StatusRequestEntityTooLarge ||
			e.Code != api.CodePayloadTooLarge {
			t.Fatalf("= %d %q, want 413 payload_too_large", resp.StatusCode, e.Code)
		}
	})

	t.Run("ingest disabled", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/interfaces/olap/log", "text/plain",
			strings.NewReader("SELECT 1\n"))
		if err != nil {
			t.Fatal(err)
		}
		if e := envelope(t, resp); resp.StatusCode != http.StatusNotImplemented ||
			e.Code != api.CodeIngestDisabled {
			t.Fatalf("= %d %q, want 501 ingest_disabled", resp.StatusCode, e.Code)
		}
	})
}

func TestServedPage(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/v1/interfaces/olap/page", "/interfaces/olap/page"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status = %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
			t.Fatalf("content-type = %q", ct)
		}
		page := string(b)
		if !strings.Contains(page, `"endpoint":"/v1/interfaces/olap/query"`) {
			t.Fatalf("page not wired to the v1 query endpoint:\n%.400s", page)
		}
		if strings.Contains(page, `"token":"`) {
			t.Fatal("open page embeds a token")
		}
	}
}

func TestQueryInitial(t *testing.T) {
	ts, h := newTestServer(t)
	code, resp, _ := postQuery(t, ts.URL+"/v1/interfaces/olap/query", api.QueryRequest{})
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	want, err := engine.Exec(h.Catalog(), h.Iface().Initial)
	if err != nil {
		t.Fatal(err)
	}
	if resp.SQL != ast.SQL(h.Iface().Initial) || resp.RowCount != len(want.Rows) {
		t.Fatalf("sql=%q rows=%d, want sql=%q rows=%d",
			resp.SQL, resp.RowCount, ast.SQL(h.Iface().Initial), len(want.Rows))
	}
}

// TestQueryUnseenSliderValue is the acceptance scenario: a slider value
// the log never contained binds via range extrapolation and returns the
// same rows direct engine execution yields.
func TestQueryUnseenSliderValue(t *testing.T) {
	ts, h := newTestServer(t)
	w := sliderWidget(t, h.Iface())
	lo, hi := w.Domain.Range()
	unseen := float64(int(lo+hi) / 2)
	for _, v := range w.Domain.Values() {
		if s := ast.SQL(v); s == fmt.Sprintf("%g", unseen) {
			unseen += 0.5 // collide with a mined option? shift off-grid
		}
	}
	code, resp, errEnv := postQuery(t, ts.URL+"/v1/interfaces/olap/query", api.QueryRequest{
		Widgets: []api.WidgetBinding{{Path: w.Path.String(), Number: &unseen}},
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d (%v)", code, errEnv)
	}
	bound, err := api.Bind(h.Iface(), []api.WidgetBinding{{Path: w.Path.String(), Number: &unseen}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Exec(h.Catalog(), bound)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RowCount != len(want.Rows) || len(resp.Cols) != len(want.Cols) {
		t.Fatalf("got %d rows/%d cols, want %d/%d", resp.RowCount, len(resp.Cols), len(want.Rows), len(want.Cols))
	}
	if !strings.Contains(resp.SQL, fmt.Sprintf("%g", unseen)) {
		t.Fatalf("bound SQL %q lacks the unseen value %g", resp.SQL, unseen)
	}
}

func TestQueryAmbiguousBindingIs422(t *testing.T) {
	ts, h := newTestServer(t)
	w := sliderWidget(t, h.Iface())
	v, s := 3.0, "three"
	code, _, e := postQuery(t, ts.URL+"/v1/interfaces/olap/query", api.QueryRequest{
		Widgets: []api.WidgetBinding{{Path: w.Path.String(), Number: &v, Text: &s}},
	})
	if code != http.StatusUnprocessableEntity || e.Code != api.CodeBindRejected {
		t.Fatalf("= %d %v, want 422 bind_rejected", code, e)
	}
	if !strings.Contains(e.Message, "exactly one") {
		t.Fatalf("unexpected error %q", e.Message)
	}
}

// TestQueryPaginationOverHTTP drives Limit/Cursor through the wire
// format.
func TestQueryPaginationOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t)
	code, full, _ := postQuery(t, ts.URL+"/v1/interfaces/olap/query", api.QueryRequest{})
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if full.RowCount < 2 {
		t.Skipf("fixture initial query returns %d rows; need >= 2", full.RowCount)
	}
	code, first, _ := postQuery(t, ts.URL+"/v1/interfaces/olap/query", api.QueryRequest{Limit: 1})
	if code != http.StatusOK || len(first.Rows) != 1 || !first.Truncated || first.NextCursor == "" {
		t.Fatalf("first page = %d %+v", code, first)
	}
	code, second, _ := postQuery(t, ts.URL+"/v1/interfaces/olap/query",
		api.QueryRequest{Limit: 1, Cursor: first.NextCursor})
	if code != http.StatusOK || second.Offset != 1 {
		t.Fatalf("second page = %d %+v", code, second)
	}
}

func TestRepeatedQueryHitsCache(t *testing.T) {
	ts, _ := newTestServer(t)
	iface, _ := minedOLAP(t)
	w := sliderWidget(t, iface)
	lo, _ := w.Domain.Range()
	req := api.QueryRequest{Widgets: []api.WidgetBinding{{Path: w.Path.String(), Number: &lo}}}

	code, first, _ := postQuery(t, ts.URL+"/v1/interfaces/olap/query", req)
	if code != http.StatusOK || first.Cache != "miss" {
		t.Fatalf("first request: status=%d cache=%q", code, first.Cache)
	}
	code, second, _ := postQuery(t, ts.URL+"/v1/interfaces/olap/query", req)
	if code != http.StatusOK || second.Cache != "hit" {
		t.Fatalf("second request: status=%d cache=%q", code, second.Cache)
	}
	if second.RowCount != first.RowCount || second.SQL != first.SQL {
		t.Fatalf("cached result differs: %+v vs %+v", second, first)
	}

	var dbg api.DebugInfo
	if codeDbg := getJSON(t, ts.URL+"/v1/debug", &dbg); codeDbg != http.StatusOK {
		t.Fatalf("debug status = %d", codeDbg)
	}
	if len(dbg.Interfaces) != 1 || dbg.Interfaces[0].Cache.Hits == 0 || dbg.Interfaces[0].Queries < 2 {
		t.Fatalf("debug = %+v", dbg)
	}
}

// --- auth.

func authedServer(t *testing.T) (*httptest.Server, *api.Hosted) {
	return newTestServer(t, WithAuth(AuthConfig{Token: "sesame"}))
}

func doReq(t *testing.T, method, url, token, body string) (*http.Response, api.Error) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e api.Error
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &e)
	return resp, e
}

// TestAuthContract is the acceptance check: with a token configured,
// unauthenticated POSTs to query and log return 401 (missing) / 403
// (wrong), while metadata GETs stay open.
func TestAuthContract(t *testing.T) {
	ts, _ := authedServer(t)

	for _, path := range []string{"/v1/interfaces/olap/query", "/interfaces/olap/query",
		"/v1/interfaces/olap/log"} {
		resp, e := doReq(t, "POST", ts.URL+path, "", `{"widgets":[]}`)
		if resp.StatusCode != http.StatusUnauthorized || e.Code != api.CodeUnauthorized {
			t.Fatalf("POST %s no-token = %d %q, want 401 unauthorized", path, resp.StatusCode, e.Code)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Fatalf("POST %s 401 without WWW-Authenticate", path)
		}
	}

	resp, e := doReq(t, "POST", ts.URL+"/v1/interfaces/olap/query", "wrong", `{"widgets":[]}`)
	if resp.StatusCode != http.StatusForbidden || e.Code != api.CodeForbidden {
		t.Fatalf("wrong token = %d %q, want 403 forbidden", resp.StatusCode, e.Code)
	}

	resp, _ = doReq(t, "POST", ts.URL+"/v1/interfaces/olap/query", "sesame", `{"widgets":[]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("right token = %d, want 200", resp.StatusCode)
	}

	// Metadata stays open without any token.
	for _, path := range []string{"/v1/interfaces", "/v1/interfaces/olap",
		"/v1/interfaces/olap/epoch", "/v1/interfaces/olap/page", "/v1/healthz", "/v1/debug"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want open 200", path, resp.StatusCode)
		}
	}
}

// TestAuthPerInterfaceOverride: interface tokens override the global
// one, and an interface with an empty override stays open.
func TestAuthPerInterfaceOverride(t *testing.T) {
	iface, db := minedOLAP(t)
	reg := api.NewRegistry()
	for _, id := range []string{"locked", "open"} {
		if _, err := reg.Add(id, id, iface, db); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(api.NewService(reg), WithAuth(AuthConfig{
		Token:           "global",
		InterfaceTokens: map[string]string{"locked": "special", "open": ""},
	})).Handler())
	t.Cleanup(ts.Close)

	if resp, _ := doReq(t, "POST", ts.URL+"/v1/interfaces/locked/query", "global", `{"widgets":[]}`); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("global token on overridden interface = %d, want 403", resp.StatusCode)
	}
	if resp, _ := doReq(t, "POST", ts.URL+"/v1/interfaces/locked/query", "special", `{"widgets":[]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("special token = %d, want 200", resp.StatusCode)
	}
	if resp, _ := doReq(t, "POST", ts.URL+"/v1/interfaces/open/query", "", `{"widgets":[]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("open interface = %d, want 200 without token", resp.StatusCode)
	}
}

// TestHealthzQueryCounter: malformed and unauthorized requests must not
// inflate the per-interface query counter.
func TestHealthzQueryCounter(t *testing.T) {
	ts, h := authedServer(t)
	// Unauthorized, then malformed-but-authorized, then accepted.
	doReq(t, "POST", ts.URL+"/v1/interfaces/olap/query", "", `{"widgets":[]}`)
	doReq(t, "POST", ts.URL+"/v1/interfaces/olap/query", "sesame", `{"widgets": [`)
	if got := h.Queries(); got != 0 {
		t.Fatalf("rejected requests advanced the counter to %d", got)
	}
	if resp, _ := doReq(t, "POST", ts.URL+"/v1/interfaces/olap/query", "sesame", `{"widgets":[]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("accepted query = %d", resp.StatusCode)
	}
	var health api.Health
	if code := getJSON(t, ts.URL+"/v1/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if len(health.Interfaces) != 1 || health.Interfaces[0].Queries != 1 {
		t.Fatalf("healthz queries = %+v, want exactly 1", health.Interfaces)
	}
}

// --- middleware.

func TestGzipResponses(t *testing.T) {
	ts, _ := newTestServer(t)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/interfaces", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	tr := &http.Transport{DisableCompression: true} // see the raw encoding
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var list []api.InterfaceSummary
	if err := json.NewDecoder(gz).Decode(&list); err != nil {
		t.Fatalf("gunzip+decode: %v", err)
	}
	if len(list) != 1 || list[0].ID != "olap" {
		t.Fatalf("list = %+v", list)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	ts := httptest.NewServer(Chain(mux, Recover(log.New(io.Discard, "", 0))))
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError || e.Code != api.CodeInternal {
		t.Fatalf("= %d %q, want 500 internal", resp.StatusCode, e.Code)
	}
}

func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := log.New(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), "", 0)
	ts, _ := newTestServer(t, WithLogger(logger))
	if _, err := http.Get(ts.URL + "/v1/interfaces"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(buf.String(), "GET /v1/interfaces 200") {
		t.Fatalf("request log missing: %q", buf.String())
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestConcurrentQueries hammers POST /query from many goroutines with a
// mix of widget states; run under -race this is the serving layer's
// thread-safety check (shared immutable dataset, locked cache).
func TestConcurrentQueries(t *testing.T) {
	ts, h := newTestServer(t)
	w := sliderWidget(t, h.Iface())
	lo, hi := w.Domain.Range()

	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := lo + float64((g*perG+i)%int(hi-lo+1))
				body, _ := json.Marshal(api.QueryRequest{
					Widgets: []api.WidgetBinding{{Path: w.Path.String(), Number: &v}},
				})
				resp, err := http.Post(ts.URL+"/v1/interfaces/olap/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var out api.QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := h.Cache().Stats()
	if stats.Hits+stats.Misses == 0 {
		t.Fatalf("cache saw no traffic: %+v", stats)
	}
	if got := h.Queries(); got != goroutines*perG {
		t.Fatalf("query counter = %d, want %d", got, goroutines*perG)
	}
}

func TestRegistryDuplicateAndNil(t *testing.T) {
	iface, db := minedOLAP(t)
	reg := api.NewRegistry()
	if _, err := reg.Add("x", "t", iface, db); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("x", "t", iface, db); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := reg.Add("", "t", iface, db); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := reg.Add("team/olap", "t", iface, db); err == nil {
		t.Fatal("id with '/' accepted (would be unroutable)")
	}
	if _, err := reg.Add("y", "t", nil, db); err == nil {
		t.Fatal("nil interface accepted")
	}
}
