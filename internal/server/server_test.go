package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// testFixture mines the OLAP interface once; every test builds its own
// registry over the shared immutable interface and dataset.
var fixture struct {
	once  sync.Once
	iface *core.Interface
	db    *engine.DB
	err   error
}

func minedOLAP(t testing.TB) (*core.Interface, *engine.DB) {
	t.Helper()
	fixture.once.Do(func() {
		log := workload.OLAPLog(150, 7)
		fixture.iface, fixture.err = core.Generate(log, core.DefaultOptions())
		fixture.db = engine.OnTimeDB(300)
	})
	if fixture.err != nil {
		t.Fatalf("mine OLAP fixture: %v", fixture.err)
	}
	return fixture.iface, fixture.db
}

func newTestServer(t *testing.T) (*httptest.Server, *Hosted) {
	t.Helper()
	iface, db := minedOLAP(t)
	reg := NewRegistry()
	h, err := reg.Add("olap", "OnTime OLAP dashboard", iface, db)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg).Handler())
	t.Cleanup(ts.Close)
	return ts, h
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func postQuery(t *testing.T, url string, req QueryRequest) (int, *QueryResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, nil, e.Error
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &out, ""
}

// sliderWidget returns a mined numeric-range widget to exercise
// extrapolation.
func sliderWidget(t testing.TB, iface *core.Interface) *mapper.MappedWidget {
	t.Helper()
	for _, w := range iface.Widgets {
		if w.Domain.IsNumericRange() {
			return w
		}
	}
	t.Fatal("fixture mined no numeric-range widget")
	return nil
}

func TestListInterfaces(t *testing.T) {
	ts, _ := newTestServer(t)
	var list []InterfaceSummary
	if code := getJSON(t, ts.URL+"/interfaces", &list); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(list) != 1 || list[0].ID != "olap" || list[0].Widgets == 0 {
		t.Fatalf("list = %+v", list)
	}
}

func TestGetInterfaceDetail(t *testing.T) {
	ts, h := newTestServer(t)
	var d InterfaceDetail
	if code := getJSON(t, ts.URL+"/interfaces/olap", &d); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if d.InitialSQL == "" || len(d.Widgets) != len(h.Iface().Widgets) {
		t.Fatalf("detail = %+v", d)
	}
	for _, w := range d.Widgets {
		if w.Path == "" || w.Kind == "" || len(w.Options) == 0 {
			t.Fatalf("incomplete widget info: %+v", w)
		}
	}
}

func TestUnknownInterfaceIs404(t *testing.T) {
	ts, _ := newTestServer(t)
	var e errorResponse
	if code := getJSON(t, ts.URL+"/interfaces/nope", &e); code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
	code, _, _ := postQuery(t, ts.URL+"/interfaces/nope/query", QueryRequest{})
	if code != http.StatusNotFound {
		t.Fatalf("POST status = %d, want 404", code)
	}
}

func TestServedPage(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/interfaces/olap/page")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content-type = %q", ct)
	}
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	if !strings.Contains(page, `"endpoint":"/interfaces/olap/query"`) {
		t.Fatalf("page not wired to the query endpoint:\n%.400s", page)
	}
}

func TestQueryInitial(t *testing.T) {
	ts, h := newTestServer(t)
	code, resp, _ := postQuery(t, ts.URL+"/interfaces/olap/query", QueryRequest{})
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	want, err := engine.Exec(h.DB(), h.Iface().Initial)
	if err != nil {
		t.Fatal(err)
	}
	if resp.SQL != ast.SQL(h.Iface().Initial) || resp.RowCount != len(want.Rows) {
		t.Fatalf("sql=%q rows=%d, want sql=%q rows=%d",
			resp.SQL, resp.RowCount, ast.SQL(h.Iface().Initial), len(want.Rows))
	}
}

// TestQueryUnseenSliderValue is the acceptance scenario: a slider value
// the log never contained binds via range extrapolation and returns the
// same rows direct engine execution yields.
func TestQueryUnseenSliderValue(t *testing.T) {
	ts, h := newTestServer(t)
	w := sliderWidget(t, h.Iface())
	lo, hi := w.Domain.Range()
	unseen := float64(int(lo+hi) / 2)
	for _, v := range w.Domain.Values() {
		if s := ast.SQL(v); s == fmt.Sprintf("%g", unseen) {
			unseen += 0.5 // collide with a mined option? shift off-grid
		}
	}
	code, resp, errMsg := postQuery(t, ts.URL+"/interfaces/olap/query", QueryRequest{
		Widgets: []WidgetBinding{{Path: w.Path.String(), Number: &unseen}},
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d (%s)", code, errMsg)
	}
	bound, err := Bind(h.Iface(), []WidgetBinding{{Path: w.Path.String(), Number: &unseen}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Exec(h.DB(), bound)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RowCount != len(want.Rows) || len(resp.Cols) != len(want.Cols) {
		t.Fatalf("got %d rows/%d cols, want %d/%d", resp.RowCount, len(resp.Cols), len(want.Rows), len(want.Cols))
	}
	if !strings.Contains(resp.SQL, fmt.Sprintf("%g", unseen)) {
		t.Fatalf("bound SQL %q lacks the unseen value %g", resp.SQL, unseen)
	}
}

func TestQueryOutOfDomainIs4xx(t *testing.T) {
	ts, h := newTestServer(t)
	w := sliderWidget(t, h.Iface())
	_, hi := w.Domain.Range()
	outside := hi + 1000
	code, _, errMsg := postQuery(t, ts.URL+"/interfaces/olap/query", QueryRequest{
		Widgets: []WidgetBinding{{Path: w.Path.String(), Number: &outside}},
	})
	if code < 400 || code >= 500 {
		t.Fatalf("status = %d, want 4xx", code)
	}
	if !strings.Contains(errMsg, "domain") {
		t.Fatalf("error %q does not mention the domain", errMsg)
	}
}

func TestQueryUnknownWidgetPathIs4xx(t *testing.T) {
	ts, _ := newTestServer(t)
	v := 1.0
	code, _, errMsg := postQuery(t, ts.URL+"/interfaces/olap/query", QueryRequest{
		Widgets: []WidgetBinding{{Path: "9/9/9", Number: &v}},
	})
	if code < 400 || code >= 500 {
		t.Fatalf("status = %d, want 4xx", code)
	}
	if !strings.Contains(errMsg, "no widget") {
		t.Fatalf("unexpected error %q", errMsg)
	}
}

func TestQueryMalformedBodyIs400(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/interfaces/olap/query", "application/json",
		strings.NewReader(`{"widgets": [`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestQueryAmbiguousBindingIs4xx(t *testing.T) {
	ts, h := newTestServer(t)
	w := sliderWidget(t, h.Iface())
	v, s := 3.0, "three"
	code, _, errMsg := postQuery(t, ts.URL+"/interfaces/olap/query", QueryRequest{
		Widgets: []WidgetBinding{{Path: w.Path.String(), Number: &v, Text: &s}},
	})
	if code < 400 || code >= 500 {
		t.Fatalf("status = %d, want 4xx", code)
	}
	if !strings.Contains(errMsg, "exactly one") {
		t.Fatalf("unexpected error %q", errMsg)
	}
}

func TestRepeatedQueryHitsCache(t *testing.T) {
	ts, h := newTestServer(t)
	w := sliderWidget(t, h.Iface())
	lo, _ := w.Domain.Range()
	req := QueryRequest{Widgets: []WidgetBinding{{Path: w.Path.String(), Number: &lo}}}

	code, first, _ := postQuery(t, ts.URL+"/interfaces/olap/query", req)
	if code != http.StatusOK || first.Cache != "miss" {
		t.Fatalf("first request: status=%d cache=%q", code, first.Cache)
	}
	code, second, _ := postQuery(t, ts.URL+"/interfaces/olap/query", req)
	if code != http.StatusOK || second.Cache != "hit" {
		t.Fatalf("second request: status=%d cache=%q", code, second.Cache)
	}
	if second.CacheStats.Hits == 0 {
		t.Fatalf("cache stats did not record the hit: %+v", second.CacheStats)
	}
	if second.RowCount != first.RowCount || second.SQL != first.SQL {
		t.Fatalf("cached result differs: %+v vs %+v", second, first)
	}

	var dbg DebugInfo
	if codeDbg := getJSON(t, ts.URL+"/debug", &dbg); codeDbg != http.StatusOK {
		t.Fatalf("debug status = %d", codeDbg)
	}
	if len(dbg.Interfaces) != 1 || dbg.Interfaces[0].Cache.Hits == 0 || dbg.Interfaces[0].Queries < 2 {
		t.Fatalf("debug = %+v", dbg)
	}
}

// TestConcurrentQueries hammers POST /query from many goroutines with a
// mix of widget states; run under -race this is the serving layer's
// thread-safety check (shared immutable dataset, locked cache).
func TestConcurrentQueries(t *testing.T) {
	ts, h := newTestServer(t)
	w := sliderWidget(t, h.Iface())
	lo, hi := w.Domain.Range()

	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := lo + float64((g*perG+i)%int(hi-lo+1))
				body, _ := json.Marshal(QueryRequest{
					Widgets: []WidgetBinding{{Path: w.Path.String(), Number: &v}},
				})
				resp, err := http.Post(ts.URL+"/interfaces/olap/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var out QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := h.Cache().Stats()
	if stats.Hits+stats.Misses == 0 {
		t.Fatalf("cache saw no traffic: %+v", stats)
	}
	if got := h.Queries(); got != goroutines*perG {
		t.Fatalf("query counter = %d, want %d", got, goroutines*perG)
	}
}

func TestRegistryDuplicateAndNil(t *testing.T) {
	iface, db := minedOLAP(t)
	reg := NewRegistry()
	if _, err := reg.Add("x", "t", iface, db); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("x", "t", iface, db); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := reg.Add("", "t", iface, db); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := reg.Add("team/olap", "t", iface, db); err == nil {
		t.Fatal("id with '/' accepted (would be unroutable)")
	}
	if _, err := reg.Add("y", "t", nil, db); err == nil {
		t.Fatal("nil interface accepted")
	}
}
