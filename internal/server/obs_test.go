package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/obs"
)

// TestMetricsEndpoint drives real traffic through a server with the
// exposition mounted and asserts the scrape is valid Prometheus text
// covering the HTTP and query families.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, WithMetrics(obs.Default))

	if _, err := http.Get(ts.URL + "/v1/interfaces"); err != nil {
		t.Fatal(err)
	}
	// Enough queries that the 1:8 sampled latency histogram observes at
	// least one, and the lazy per-interface counters have traffic.
	for i := 0; i < 20; i++ {
		code, _, _ := postQuery(t, ts.URL+"/v1/interfaces/olap/query", api.QueryRequest{Limit: 1})
		if code != http.StatusOK {
			t.Fatalf("query %d = %d", i, code)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q, want %q", ct, obs.ContentType)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	for _, want := range []string{
		"# TYPE pi_http_requests_total counter",
		`pi_http_requests_total{route="GET /v1/interfaces",class="2xx"}`,
		"# TYPE pi_http_request_duration_seconds histogram",
		"# TYPE pi_query_duration_seconds histogram",
		`pi_queries_total{iface="olap"} 20`,
		`pi_query_result_cache_total{iface="olap",outcome="hit"}`,
		`pi_interface_epoch{iface="olap"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// The scrape itself must not 500 on a second pass (lazy closures
	// re-evaluate cleanly).
	if resp2, err := http.Get(ts.URL + "/v1/metrics"); err != nil || resp2.StatusCode != http.StatusOK {
		t.Fatalf("second scrape: %v %v", err, resp2)
	} else {
		resp2.Body.Close()
	}
}

// TestTraceIDRoundTripHTTP pins the cross-hop contract: a well-formed
// client-supplied Pi-Trace-Id is adopted and echoed; garbage is
// replaced with a fresh server-minted id.
func TestTraceIDRoundTripHTTP(t *testing.T) {
	ts, _ := newTestServer(t)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/interfaces", nil)
	req.Header.Set(obs.TraceHeader, "client-supplied-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "client-supplied-trace-42" {
		t.Fatalf("trace header = %q, want the client's id back", got)
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/interfaces", nil)
	req.Header.Set(obs.TraceHeader, "has spaces -- not valid")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get(obs.TraceHeader)
	if got == "has spaces -- not valid" || !obs.ValidTraceID(got) {
		t.Fatalf("invalid client id must be replaced with a valid one, got %q", got)
	}
}

// TestErrorEnvelopeCarriesTraceID: a failing request's JSON error body
// names the trace id, so a user-reported error is greppable in the
// request log.
func TestErrorEnvelopeCarriesTraceID(t *testing.T) {
	ts, _ := newTestServer(t)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/interfaces/nope/query",
		strings.NewReader(`{"widgets":[]}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "envelope-trace-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound || e.Code != api.CodeNotFound {
		t.Fatalf("= %d %q, want 404 not_found", resp.StatusCode, e.Code)
	}
	if e.TraceID != "envelope-trace-7" {
		t.Fatalf("error envelope traceId = %q, want the request's id", e.TraceID)
	}
}

// TestSlowQueryRingEndpoint: with sampling at 1 every query lands in
// the ring, and the report carries the trace id, interface and stage
// timings.
func TestSlowQueryRingEndpoint(t *testing.T) {
	ring := obs.NewSlowRing(8, 0, 1)
	// The ring needs wiring on both ends, as the cmds do it: the server
	// mounts the report endpoint, the service records into it.
	iface, db := minedOLAP(t)
	reg := api.NewRegistry()
	if _, err := reg.Add("olap", "OnTime OLAP dashboard", iface, db); err != nil {
		t.Fatal(err)
	}
	svc := api.NewService(reg)
	svc.SetSlowRing(ring)
	ts := httptest.NewServer(New(svc, WithSlowRing(ring)).Handler())
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/interfaces/olap/query",
		strings.NewReader(`{"widgets":[],"limit":1}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "slowring-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d", resp.StatusCode)
	}

	var report obs.SlowReport
	if code := getJSON(t, ts.URL+"/v1/debug/slow", &report); code != http.StatusOK {
		t.Fatalf("GET /v1/debug/slow = %d", code)
	}
	if len(report.Entries) == 0 {
		t.Fatal("slow ring is empty after a sampled query")
	}
	var found *obs.SlowEntry
	for i := range report.Entries {
		if report.Entries[i].TraceID == "slowring-trace-1" {
			found = &report.Entries[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("no entry with the request's trace id: %+v", report.Entries)
	}
	if found.Interface != "olap" || found.Source != "serve" {
		t.Fatalf("entry = %+v, want iface olap source serve", found)
	}
	if found.SQL == "" || found.TotalMS < 0 {
		t.Fatalf("entry missing SQL/timing: %+v", found)
	}
}

// TestJSONRequestLog pins the -log-format json contract: one JSON
// object per line carrying method, route, status and trace id.
func TestJSONRequestLog(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := log.New(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), "", 0)
	ts, _ := newTestServer(t, WithLogger(logger), WithLogFormat(LogJSON))

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/interfaces/olap/epoch", nil)
	req.Header.Set(obs.TraceHeader, "jsonlog-trace-9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	var rec struct {
		Method  string  `json:"method"`
		Path    string  `json:"path"`
		Route   string  `json:"route"`
		Status  int     `json:"status"`
		DurMS   float64 `json:"durMs"`
		TraceID string  `json:"traceId"`
		Iface   string  `json:"iface"`
	}
	var hit bool
	for _, line := range lines {
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q (%v)", line, err)
		}
		if rec.TraceID == "jsonlog-trace-9" {
			hit = true
			if rec.Method != "GET" || rec.Status != http.StatusOK ||
				rec.Iface != "olap" || !strings.Contains(rec.Route, "/epoch") {
				t.Fatalf("bad json log record: %+v", rec)
			}
		}
	}
	if !hit {
		t.Fatalf("no log line carried the trace id: %v", lines)
	}
}
