package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/htmlgen"
	"repro/internal/qlog"
)

// Server is the HTTP front over a registry of hosted interfaces.
//
//	GET  /interfaces             — list hosted interfaces
//	GET  /interfaces/{id}        — one interface's widgets and initial query
//	GET  /interfaces/{id}/page   — the compiled HTML page, wired to the API
//	GET  /interfaces/{id}/epoch  — the interface's current epoch (pages poll it)
//	POST /interfaces/{id}/query  — bind widget state, execute, return rows
//	POST /interfaces/{id}/log    — ingest new query-log entries (needs an Ingestor)
//	GET  /healthz                — build info, uptime, per-interface epoch + cache hit rate
//	GET  /debug                  — cache and traffic counters
type Server struct {
	reg   *Registry
	mux   *http.ServeMux
	ing   Ingestor
	start time.Time
}

// Ingestor accepts new query-log entries for a hosted interface —
// internal/ingest implements it; the server stays decoupled from the
// mining machinery. Submit buffers entries (and may flush when a batch
// fills); Flush forces buffered entries through re-mining and returns
// the resulting epoch.
type Ingestor interface {
	Submit(id string, entries []qlog.Entry) (IngestAck, error)
	Flush(id string) (uint64, error)
}

// IngestStatuser is optionally implemented by an Ingestor to surface
// per-interface ingestion counters in /healthz.
type IngestStatuser interface {
	IngestStatus(id string) (IngestStatus, bool)
}

// IngestStatus is one interface's ingestion counters.
type IngestStatus struct {
	Buffered    int    `json:"buffered"`
	Accepted    uint64 `json:"accepted"`
	Dropped     uint64 `json:"dropped"`
	Flushes     uint64 `json:"flushes"`
	FullRemines uint64 `json:"fullRemines"`
	LastError   string `json:"lastError,omitempty"`
}

// IngestAck reports what happened to a Submit call.
type IngestAck struct {
	Accepted int    `json:"accepted"` // entries buffered by this call
	Buffered int    `json:"buffered"` // entries still waiting after the call
	Flushed  bool   `json:"flushed"`  // whether a re-mine ran
	Dropped  int    `json:"dropped,omitempty"`
	Epoch    uint64 `json:"epoch"` // interface epoch after the call
}

// New builds a server over the registry. Interfaces may still be added
// to the registry after the server starts.
func New(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("GET /interfaces", s.handleList)
	s.mux.HandleFunc("GET /interfaces/{id}", s.handleGet)
	s.mux.HandleFunc("GET /interfaces/{id}/page", s.handlePage)
	s.mux.HandleFunc("GET /interfaces/{id}/epoch", s.handleEpoch)
	s.mux.HandleFunc("POST /interfaces/{id}/query", s.handleQuery)
	s.mux.HandleFunc("POST /interfaces/{id}/log", s.handleLog)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug", s.handleDebug)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// SetIngestor wires live log ingestion into POST /interfaces/{id}/log.
// Call before serving begins.
func (s *Server) SetIngestor(ing Ingestor) { s.ing = ing }

// Handler returns the http.Handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves the API on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s.Handler())
}

// --- response shapes (the JSON API contract).

// InterfaceSummary is one row of GET /interfaces.
type InterfaceSummary struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Widgets int     `json:"widgets"`
	Cost    float64 `json:"cost"`
	Queries uint64  `json:"queries"`
	Epoch   uint64  `json:"epoch"`
}

// WidgetInfo describes one widget of GET /interfaces/{id}.
type WidgetInfo struct {
	Path    string   `json:"path"`
	Kind    string   `json:"kind"`
	Label   string   `json:"label"`
	Options []string `json:"options"`
	Absent  bool     `json:"absent,omitempty"`
	Numeric bool     `json:"numeric,omitempty"`
	// Min/Max are meaningful only when Numeric; no omitempty, since 0
	// is a legitimate bound.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// InterfaceDetail is the body of GET /interfaces/{id}.
type InterfaceDetail struct {
	ID         string       `json:"id"`
	Title      string       `json:"title"`
	Epoch      uint64       `json:"epoch"`
	InitialSQL string       `json:"initialSql"`
	Widgets    []WidgetInfo `json:"widgets"`
}

// QueryRequest is the body of POST /interfaces/{id}/query.
type QueryRequest struct {
	Widgets []WidgetBinding `json:"widgets"`
}

// QueryResponse is the body of a successful query: the bound SQL, the
// result relation, the epoch of the interface that answered, and
// whether result and plan came from their caches.
type QueryResponse struct {
	SQL        string     `json:"sql"`
	Epoch      uint64     `json:"epoch"`
	Cols       []string   `json:"cols"`
	Rows       [][]any    `json:"rows"`
	RowCount   int        `json:"rowCount"`
	Cache      string     `json:"cache"` // "hit" | "miss"
	Plan       string     `json:"plan"`  // "hit" | "miss"
	CacheStats CacheStats `json:"cacheStats"`
}

// LogRequest is the JSON body of POST /interfaces/{id}/log (the
// endpoint also accepts text/plain statements in the qlog text format).
type LogRequest struct {
	Entries []LogEntry `json:"entries"`
}

// LogEntry is one submitted query-log entry.
type LogEntry struct {
	SQL    string `json:"sql"`
	Client string `json:"client,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers.

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	http.Redirect(w, r, "/interfaces", http.StatusFound)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	hosted := s.reg.List()
	out := make([]InterfaceSummary, 0, len(hosted))
	for _, h := range hosted {
		st := h.load()
		out = append(out, InterfaceSummary{
			ID:      h.ID,
			Title:   h.Title,
			Widgets: len(st.iface.Widgets),
			Cost:    st.iface.Cost(),
			Queries: h.Queries(),
			Epoch:   st.epoch,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) hosted(w http.ResponseWriter, r *http.Request) (*Hosted, bool) {
	id := r.PathValue("id")
	h, ok := s.reg.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown interface %q", id)})
		return nil, false
	}
	return h, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	h, ok := s.hosted(w, r)
	if !ok {
		return
	}
	st := h.load()
	d := InterfaceDetail{ID: h.ID, Title: h.Title, Epoch: st.epoch, InitialSQL: ast.SQL(st.iface.Initial)}
	for _, wd := range st.iface.Widgets {
		info := WidgetInfo{
			Path:   wd.Path.String(),
			Kind:   wd.Type.Name,
			Label:  htmlgen.Label(wd),
			Absent: wd.Domain.HasAbsent(),
		}
		for _, v := range wd.Domain.Values() {
			if v == nil {
				info.Options = append(info.Options, "(absent)")
				continue
			}
			info.Options = append(info.Options, ast.SQL(v))
		}
		if wd.Domain.IsNumericRange() {
			info.Numeric = true
			info.Min, info.Max = wd.Domain.Range()
		}
		d.Widgets = append(d.Widgets, info)
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	h, ok := s.hosted(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"epoch": h.Epoch()})
}

func (s *Server) handlePage(w http.ResponseWriter, r *http.Request) {
	h, ok := s.hosted(w, r)
	if !ok {
		return
	}
	st := h.load()
	st.pageMu.RLock()
	page := st.page
	st.pageMu.RUnlock()
	if page == "" {
		st.pageMu.Lock()
		if st.page == "" {
			base := "/interfaces/" + h.ID
			compiled, err := htmlgen.CompileServedLive(st.iface, h.Title, base+"/query", base+"/epoch", st.epoch)
			if err != nil {
				st.pageMu.Unlock()
				writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
				return
			}
			st.page = compiled
		}
		page = st.page
		st.pageMu.Unlock()
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(page))
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	h, ok := s.hosted(w, r)
	if !ok {
		return
	}
	h.queries.Add(1)
	st := h.load()

	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}

	// Plan lookup first: a repeated widget-state shape skips binding,
	// rendering and hashing even when its result has been evicted.
	planKey := PlanKey(req.Widgets)
	plan, planHit := st.plans.Get(planKey)
	if !planHit {
		q, err := Bind(st.iface, req.Widgets)
		if err != nil {
			var be *BindError
			if errors.As(err, &be) {
				writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: be.Error()})
				return
			}
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		plan = &Plan{Query: q, SQL: ast.SQL(q), Hash: ast.HashOf(q)}
		st.plans.Put(planKey, plan)
	}

	res, hit := st.cache.Get(plan.Hash, plan.SQL)
	if !hit {
		var err error
		res, err = engine.Exec(st.db, plan.Query)
		if err != nil {
			// The closure can contain queries the dataset cannot answer
			// (e.g. a column the sample lacks); that is a client-state
			// problem, not a server fault.
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: "exec: " + err.Error()})
			return
		}
		st.cache.Put(plan.Hash, plan.SQL, res)
	}

	resp := QueryResponse{
		SQL:        plan.SQL,
		Epoch:      st.epoch,
		Cols:       res.Cols,
		Rows:       rowsJSON(res),
		RowCount:   len(res.Rows),
		Cache:      "miss",
		Plan:       "miss",
		CacheStats: st.cache.Stats(),
	}
	if hit {
		resp.Cache = "hit"
	}
	if planHit {
		resp.Plan = "hit"
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	h, ok := s.hosted(w, r)
	if !ok {
		return
	}
	if s.ing == nil {
		writeJSON(w, http.StatusNotImplemented,
			errorResponse{Error: "live ingestion is not enabled on this server"})
		return
	}
	entries, err := readLogEntries(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if len(entries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no log entries in request body"})
		return
	}
	ack, err := s.ing.Submit(h.ID, entries)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	if r.URL.Query().Get("flush") != "" && ack.Buffered > 0 {
		if _, err := s.ing.Flush(h.ID); err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
			return
		}
		ack.Flushed = true
		ack.Buffered = 0
	}
	ack.Epoch = h.Epoch()
	writeJSON(w, http.StatusAccepted, ack)
}

// readLogEntries decodes the /log request body: JSON ({"entries":
// [{"sql": ...}]}) or plain text in the qlog statement format.
func readLogEntries(r *http.Request) ([]qlog.Entry, error) {
	body := http.MaxBytesReader(nil, r.Body, 8<<20)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req LogRequest
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("bad request body: %w", err)
		}
		out := make([]qlog.Entry, 0, len(req.Entries))
		for _, e := range req.Entries {
			if strings.TrimSpace(e.SQL) == "" {
				continue
			}
			out = append(out, qlog.Entry{SQL: e.SQL, Client: e.Client})
		}
		return out, nil
	}
	l, err := qlog.Read(body)
	if err != nil {
		if _, isMax := err.(*http.MaxBytesError); isMax {
			return nil, fmt.Errorf("request body too large")
		}
		return nil, fmt.Errorf("bad log text: %w", err)
	}
	return l.Entries, nil
}

// HealthInterface is one interface's health row.
type HealthInterface struct {
	ID           string        `json:"id"`
	Epoch        uint64        `json:"epoch"`
	Widgets      int           `json:"widgets"`
	Queries      uint64        `json:"queries"`
	CacheHitRate float64       `json:"cacheHitRate"`
	PlanHitRate  float64       `json:"planHitRate"`
	Ingest       *IngestStatus `json:"ingest,omitempty"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status        string            `json:"status"`
	GoVersion     string            `json:"goVersion"`
	Revision      string            `json:"revision,omitempty"`
	UptimeSeconds float64           `json:"uptimeSeconds"`
	Ingestion     bool              `json:"ingestion"`
	Interfaces    []HealthInterface `json:"interfaces"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	health := Health{
		Status:        "ok",
		GoVersion:     runtime.Version(),
		Revision:      buildRevision(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Ingestion:     s.ing != nil,
		Interfaces:    []HealthInterface{},
	}
	statuser, _ := s.ing.(IngestStatuser)
	for _, h := range s.reg.List() {
		st := h.load()
		row := HealthInterface{
			ID:           h.ID,
			Epoch:        st.epoch,
			Widgets:      len(st.iface.Widgets),
			Queries:      h.Queries(),
			CacheHitRate: hitRate(st.cache.Stats()),
			PlanHitRate:  hitRate(st.plans.Stats()),
		}
		if statuser != nil {
			if is, ok := statuser.IngestStatus(h.ID); ok {
				row.Ingest = &is
			}
		}
		health.Interfaces = append(health.Interfaces, row)
	}
	writeJSON(w, http.StatusOK, health)
}

func hitRate(st CacheStats) float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			return kv.Value
		}
	}
	return ""
}

// DebugInfo is the body of GET /debug.
type DebugInfo struct {
	Interfaces []DebugInterface `json:"interfaces"`
}

// DebugInterface is one interface's serving counters.
type DebugInterface struct {
	ID      string     `json:"id"`
	Epoch   uint64     `json:"epoch"`
	Queries uint64     `json:"queries"`
	Cache   CacheStats `json:"cache"`
	Plans   CacheStats `json:"plans"`
}

func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	info := DebugInfo{Interfaces: []DebugInterface{}}
	for _, h := range s.reg.List() {
		st := h.load()
		info.Interfaces = append(info.Interfaces, DebugInterface{
			ID:      h.ID,
			Epoch:   st.epoch,
			Queries: h.Queries(),
			Cache:   st.cache.Stats(),
			Plans:   st.plans.Stats(),
		})
	}
	writeJSON(w, http.StatusOK, info)
}

// --- helpers.

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// rowsJSON converts engine values to JSON scalars (numbers, strings,
// booleans, null).
func rowsJSON(t *engine.Table) [][]any {
	out := make([][]any, len(t.Rows))
	for i, row := range t.Rows {
		jr := make([]any, len(row))
		for j, v := range row {
			switch v.Kind {
			case engine.KindNumber:
				jr[j] = v.Num
			case engine.KindString:
				jr[j] = v.Str
			case engine.KindBool:
				jr[j] = v.Bool
			default:
				jr[j] = nil
			}
		}
		out[i] = jr
	}
	return out
}
