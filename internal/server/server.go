// Package server is the versioned HTTP transport over the
// internal/api service layer. Handlers are deliberately thin: they
// decode the request, call one api.Service operation and encode the
// typed result (or the structured error envelope) — all binding,
// execution and caching logic lives behind the Service seam, which is
// also what pi/client and future transports (gRPC, shard routers)
// consume.
//
// The contract is versioned under /v1:
//
//	GET  /v1/interfaces             — list hosted interfaces
//	GET  /v1/interfaces/{id}        — one interface's widgets and initial query
//	GET  /v1/interfaces/{id}/page   — the compiled HTML page, wired to the API
//	GET  /v1/interfaces/{id}/epoch  — the interface's current epoch (pages poll it)
//	POST /v1/interfaces/{id}/query  — bind widget state, execute, return rows (auth)
//	POST /v1/interfaces/{id}/log    — ingest new query-log entries (auth)
//	POST /v1/interfaces/{id}/rows   — append dataset rows to one table (auth)
//	POST /v1/interfaces/{id}/mutate — run one UPDATE/DELETE as a versioned mutation (auth)
//	DELETE /v1/interfaces/{id}      — unhost an interface (auth)
//	POST /v1/snapshot               — persist every interface to the data dir (auth)
//	GET  /v1/healthz                — build info, uptime, per-interface epoch + cache hit rate
//	GET  /v1/debug                  — cache and traffic counters
//
// The same routes are also mounted unversioned (/interfaces, /healthz,
// ...) as legacy aliases so pages compiled before the v1 surface keep
// working. Errors are always the JSON envelope {"code": ..., "error":
// ...} with the codes documented in internal/api and API.md. With
// auth configured, the mutating endpoints (query, log) require a
// bearer token; metadata GETs stay open.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/qlog"
)

// Body-size caps for the two decoding endpoints.
const (
	maxQueryBody = 1 << 20 // widget bindings
	maxLogBody   = 8 << 20 // bulk log uploads
)

// Server is the HTTP front over an api.Servicer — a local *api.Service
// or a shard router; the transport cannot tell the difference.
type Server struct {
	svc       api.Servicer
	mux       *http.ServeMux
	auth      AuthConfig
	logger    *log.Logger
	logFormat string
	metrics   *obs.Registry
	slowRing  *obs.SlowRing
	admin     []adminMount
}

// adminMount is an extra handler subtree (shard-admin or router-admin
// surface) mounted beside the v1 API.
type adminMount struct {
	prefix  string
	handler http.Handler
}

// Option customizes a Server.
type Option func(*Server)

// WithAuth enables bearer-token auth on the query and log endpoints
// (see AuthConfig).
func WithAuth(a AuthConfig) Option { return func(s *Server) { s.auth = a } }

// WithLogger enables request logging (method, path, route, status,
// duration, trace id, interface id) and directs panic reports to the
// logger.
func WithLogger(l *log.Logger) Option { return func(s *Server) { s.logger = l } }

// WithLogFormat selects the request-log line shape: LogText (default)
// or LogJSON (one JSON object per line; pair it with a logger that has
// no prefix flags so the lines stay machine-parseable).
func WithLogFormat(format string) Option { return func(s *Server) { s.logFormat = format } }

// WithMetrics mounts the registry's Prometheus exposition at
// GET /v1/metrics (and /metrics) and records per-route HTTP request
// counts, durations and status classes into it.
func WithMetrics(reg *obs.Registry) Option { return func(s *Server) { s.metrics = reg } }

// WithSlowRing mounts the slow-query ring at GET /v1/debug/slow (and
// /debug/slow). Recording into the ring is the Servicer's job (see
// api.Service.SetSlowRing / shard.Router.SetSlowRing); the server only
// exposes it.
func WithSlowRing(ring *obs.SlowRing) Option { return func(s *Server) { s.slowRing = ring } }

// WithAdmin mounts an extra handler at the given path prefix (e.g.
// "/v1/shard/" for a shard node's admin surface, "/v1/router/" for the
// router's). The handler rides inside the same middleware stack as the
// API and owns its own auth.
func WithAdmin(prefix string, h http.Handler) Option {
	return func(s *Server) { s.admin = append(s.admin, adminMount{prefix: prefix, handler: h}) }
}

// New builds a transport over the service. Interfaces may still be
// added to the service's registry after the server starts.
func New(svc api.Servicer, opts ...Option) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	s.routes()
	return s
}

// routes mounts every operation under /v1 and, for compatibility with
// pages compiled before the versioned surface, under the legacy
// unversioned paths.
func (s *Server) routes() {
	handle := func(pattern string, h http.HandlerFunc) {
		method, path, _ := strings.Cut(pattern, " ")
		s.mux.HandleFunc(method+" /v1"+path, h)
		s.mux.HandleFunc(method+" "+path, h)
	}
	handle("GET /interfaces", s.handleList)
	handle("GET /interfaces/{id}", s.handleGet)
	handle("GET /interfaces/{id}/page", s.handlePage)
	handle("GET /interfaces/{id}/epoch", s.handleEpoch)
	handle("POST /interfaces/{id}/query", s.protected(s.handleQuery))
	handle("POST /interfaces/{id}/log", s.protected(s.handleLog))
	handle("POST /interfaces/{id}/rows", s.protected(s.handleRows))
	handle("POST /interfaces/{id}/mutate", s.protected(s.handleMutate))
	handle("DELETE /interfaces/{id}", s.protected(s.handleDelete))
	// Snapshot is server-wide: it is guarded by the default token (the
	// empty path id resolves to AuthConfig.Token).
	handle("POST /snapshot", s.protected(s.handleSnapshot))
	handle("GET /healthz", s.handleHealthz)
	handle("GET /debug", s.handleDebug)
	if s.metrics != nil {
		handle("GET /metrics", s.handleMetrics)
	}
	if s.slowRing != nil {
		handle("GET /debug/slow", s.handleSlow)
	}
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	for _, m := range s.admin {
		s.mux.Handle(m.prefix, m.handler)
	}
}

// Handler returns the http.Handler serving the API, wrapped in the
// middleware stack (outermost first): panic recovery, trace-id
// adoption, request logging (when a logger is configured), HTTP
// metrics (when a registry is configured), gzip. Trace sits outside
// the log and metrics layers so both see the request's trace context;
// metrics sits inside the log layer so the logged duration includes
// metric recording.
func (s *Server) Handler() http.Handler {
	return Chain(s.mux, Gzip, Metrics(s.metrics), RequestLog(s.logger, s.logFormat), Trace, Recover(s.logger))
}

// HTTPServer returns a production-configured http.Server for the API:
// header/read/write/idle timeouts so a slow or stalled client cannot
// pin a connection forever. Callers own Shutdown.
func (s *Server) HTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// ListenAndServe serves the API on addr with the configured timeouts
// until the listener fails or Shutdown is called on the returned
// error's server. For graceful shutdown, use HTTPServer directly.
func (s *Server) ListenAndServe(addr string) error {
	return s.HTTPServer(addr).ListenAndServe()
}

// --- handlers: decode, call the service, encode.

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	http.Redirect(w, r, "/v1/interfaces", http.StatusFound)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.ListInterfaces())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	d, err := s.svc.GetInterface(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	e, err := s.svc.Epoch(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, e)
}

func (s *Server) handlePage(w http.ResponseWriter, r *http.Request) {
	page, err := s.svc.Page(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(page))
}

// queryIntoServicer is the optional fast path a Servicer can offer:
// filling a caller-provided response instead of allocating one.
// *api.Service implements it; routed implementations (shard proxies)
// fall back to Query.
type queryIntoServicer interface {
	QueryInto(id string, req api.QueryRequest, resp *api.QueryResponse) error
}

// respPool recycles query responses across requests. Entries are
// zeroed before being pooled so a parked response never pins a
// retired epoch's cached rows.
var respPool = sync.Pool{New: func() any { return new(api.QueryResponse) }}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req api.QueryRequest
	if apiErr := decodeJSON(w, r, maxQueryBody, &req); apiErr != nil {
		writeError(w, r, apiErr)
		return
	}
	if cq, ok := s.svc.(api.CtxQuerier); ok {
		resp := respPool.Get().(*api.QueryResponse)
		err := cq.QueryIntoCtx(r.Context(), r.PathValue("id"), req, resp)
		if err == nil {
			writeJSON(w, http.StatusOK, resp)
		} else {
			writeError(w, r, err)
		}
		*resp = api.QueryResponse{}
		respPool.Put(resp)
		return
	}
	if qi, ok := s.svc.(queryIntoServicer); ok {
		resp := respPool.Get().(*api.QueryResponse)
		err := qi.QueryInto(r.PathValue("id"), req, resp)
		if err == nil {
			writeJSON(w, http.StatusOK, resp)
		} else {
			writeError(w, r, err)
		}
		*resp = api.QueryResponse{}
		respPool.Put(resp)
		return
	}
	resp, err := s.svc.Query(r.PathValue("id"), req)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	// Cheap checks first: don't parse up to 8 MiB of log body just to
	// answer 404 or 501.
	if err := s.svc.IngestReady(r.PathValue("id")); err != nil {
		writeError(w, r, err)
		return
	}
	entries, apiErr := readLogEntries(w, r)
	if apiErr != nil {
		writeError(w, r, apiErr)
		return
	}
	ack, err := s.svc.IngestLog(r.PathValue("id"), entries, r.URL.Query().Get("flush") != "")
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, ack)
}

// handleRows appends dataset rows to one table of the interface's
// store; ?flush=1 publishes (and hot-swaps) immediately so the ack's
// epoch and row count reflect the submitted rows.
func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	var req api.RowsRequest
	if apiErr := decodeJSON(w, r, maxLogBody, &req); apiErr != nil {
		writeError(w, r, apiErr)
		return
	}
	ack, err := s.svc.AppendRows(r.PathValue("id"), req, r.URL.Query().Get("flush") != "")
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, ack)
}

// handleMutate runs one UPDATE or DELETE statement against the
// interface's store as a versioned mutation; the ack carries how many
// rows matched and the epochs after the publish.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req api.MutateRequest
	if apiErr := decodeJSON(w, r, maxQueryBody, &req); apiErr != nil {
		writeError(w, r, apiErr)
		return
	}
	ack, err := s.svc.MutateRows(r.PathValue("id"), req)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, ack)
}

// handleDelete unhosts an interface: it stops being served, its live
// feed detaches and its durable snapshot (if any) is removed.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	ack, err := s.svc.DeleteInterface(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

// handleSnapshot persists every hosted interface to the data dir.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	res, err := s.svc.Snapshot()
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Health())
}

func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Debug())
}

// handleMetrics serves the registry in Prometheus text exposition
// format. The endpoint is read-only and unauthenticated, like /healthz
// — scrapers should reach it without credentials.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.metrics.WritePrometheus(w)
}

// handleSlow serves the slow-query ring, newest entry first.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slowRing.Report())
}

// readLogEntries decodes the /log request body: JSON ({"entries":
// [{"sql": ...}]}) or plain text in the qlog statement format.
func readLogEntries(w http.ResponseWriter, r *http.Request) ([]qlog.Entry, *api.Error) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req api.LogRequest
		if apiErr := decodeJSON(w, r, maxLogBody, &req); apiErr != nil {
			return nil, apiErr
		}
		return req.QlogEntries(), nil
	}
	l, err := qlog.Read(http.MaxBytesReader(w, r.Body, maxLogBody))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, api.Errf(api.CodePayloadTooLarge, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", maxErr.Limit)
		}
		return nil, api.Errf(api.CodeBadRequest, http.StatusBadRequest, "bad log text: %v", err)
	}
	return l.Entries, nil
}

// --- encoding helpers.

// decodeJSON decodes a size-capped JSON body, mapping failures onto
// the error contract (payload_too_large / bad_request).
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) *api.Error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return api.Errf(api.CodePayloadTooLarge, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", maxErr.Limit)
		}
		return api.Errf(api.CodeBadRequest, http.StatusBadRequest, "bad request body: %v", err)
	}
	return nil
}

// jsonEnc is a pooled (buffer, encoder) pair: json.NewEncoder per
// response was one of the last steady-state allocations on the hot
// query path. Encoding into the buffer first also means a response
// that fails to marshal never reaches the wire half-written.
type jsonEnc struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &jsonEnc{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// maxPooledEncBuf caps the buffer size re-pooled after a response: one
// huge page must not turn the pool into a permanent high-water-mark
// memory hold.
const maxPooledEncBuf = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	e := encPool.Get().(*jsonEnc)
	e.buf.Reset()
	err := e.enc.Encode(v)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
	} else {
		w.WriteHeader(status)
		_, _ = w.Write(e.buf.Bytes())
	}
	if e.buf.Cap() <= maxPooledEncBuf {
		encPool.Put(e)
	}
}

// writeError encodes any error as the v1 envelope {"code", "error"}
// with the status the service layer chose, stamping the request's
// trace id onto the envelope (WithTrace clones, so shared error values
// are never mutated).
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	e := api.FromErr(err).WithTrace(obs.TraceID(r.Context()))
	if e.Code == api.CodeUnauthorized {
		w.Header().Set("WWW-Authenticate", `Bearer realm="pi"`)
	}
	writeJSON(w, e.Status, e)
}
