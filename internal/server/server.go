package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/htmlgen"
)

// Server is the HTTP front over a registry of hosted interfaces.
//
//	GET  /interfaces            — list hosted interfaces
//	GET  /interfaces/{id}       — one interface's widgets and initial query
//	GET  /interfaces/{id}/page  — the compiled HTML page, wired to the API
//	POST /interfaces/{id}/query — bind widget state, execute, return rows
//	GET  /debug                 — cache and traffic counters
type Server struct {
	reg *Registry
	mux *http.ServeMux
}

// New builds a server over the registry. Interfaces may still be added
// to the registry after the server starts.
func New(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /interfaces", s.handleList)
	s.mux.HandleFunc("GET /interfaces/{id}", s.handleGet)
	s.mux.HandleFunc("GET /interfaces/{id}/page", s.handlePage)
	s.mux.HandleFunc("POST /interfaces/{id}/query", s.handleQuery)
	s.mux.HandleFunc("GET /debug", s.handleDebug)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// Handler returns the http.Handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves the API on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s.Handler())
}

// --- response shapes (the JSON API contract).

// InterfaceSummary is one row of GET /interfaces.
type InterfaceSummary struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Widgets int     `json:"widgets"`
	Cost    float64 `json:"cost"`
	Queries uint64  `json:"queries"`
}

// WidgetInfo describes one widget of GET /interfaces/{id}.
type WidgetInfo struct {
	Path    string   `json:"path"`
	Kind    string   `json:"kind"`
	Label   string   `json:"label"`
	Options []string `json:"options"`
	Absent  bool     `json:"absent,omitempty"`
	Numeric bool     `json:"numeric,omitempty"`
	// Min/Max are meaningful only when Numeric; no omitempty, since 0
	// is a legitimate bound.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// InterfaceDetail is the body of GET /interfaces/{id}.
type InterfaceDetail struct {
	ID         string       `json:"id"`
	Title      string       `json:"title"`
	InitialSQL string       `json:"initialSql"`
	Widgets    []WidgetInfo `json:"widgets"`
}

// QueryRequest is the body of POST /interfaces/{id}/query.
type QueryRequest struct {
	Widgets []WidgetBinding `json:"widgets"`
}

// QueryResponse is the body of a successful query: the bound SQL, the
// result relation, and whether the result came from the AST-hash cache.
type QueryResponse struct {
	SQL        string     `json:"sql"`
	Cols       []string   `json:"cols"`
	Rows       [][]any    `json:"rows"`
	RowCount   int        `json:"rowCount"`
	Cache      string     `json:"cache"` // "hit" | "miss"
	CacheStats CacheStats `json:"cacheStats"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers.

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	http.Redirect(w, r, "/interfaces", http.StatusFound)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	hosted := s.reg.List()
	out := make([]InterfaceSummary, 0, len(hosted))
	for _, h := range hosted {
		out = append(out, InterfaceSummary{
			ID:      h.ID,
			Title:   h.Title,
			Widgets: len(h.Iface.Widgets),
			Cost:    h.Iface.Cost(),
			Queries: h.Queries(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) hosted(w http.ResponseWriter, r *http.Request) (*Hosted, bool) {
	id := r.PathValue("id")
	h, ok := s.reg.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown interface %q", id)})
		return nil, false
	}
	return h, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	h, ok := s.hosted(w, r)
	if !ok {
		return
	}
	d := InterfaceDetail{ID: h.ID, Title: h.Title, InitialSQL: ast.SQL(h.Iface.Initial)}
	for _, wd := range h.Iface.Widgets {
		info := WidgetInfo{
			Path:   wd.Path.String(),
			Kind:   wd.Type.Name,
			Label:  htmlgen.Label(wd),
			Absent: wd.Domain.HasAbsent(),
		}
		for _, v := range wd.Domain.Values() {
			if v == nil {
				info.Options = append(info.Options, "(absent)")
				continue
			}
			info.Options = append(info.Options, ast.SQL(v))
		}
		if wd.Domain.IsNumericRange() {
			info.Numeric = true
			info.Min, info.Max = wd.Domain.Range()
		}
		d.Widgets = append(d.Widgets, info)
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handlePage(w http.ResponseWriter, r *http.Request) {
	h, ok := s.hosted(w, r)
	if !ok {
		return
	}
	h.pageMu.RLock()
	page := h.page
	h.pageMu.RUnlock()
	if page == "" {
		h.pageMu.Lock()
		if h.page == "" {
			compiled, err := htmlgen.CompileServed(h.Iface, h.Title, "/interfaces/"+h.ID+"/query")
			if err != nil {
				h.pageMu.Unlock()
				writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
				return
			}
			h.page = compiled
		}
		page = h.page
		h.pageMu.Unlock()
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(page))
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	h, ok := s.hosted(w, r)
	if !ok {
		return
	}
	h.queries.Add(1)

	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}

	q, err := Bind(h.Iface, req.Widgets)
	if err != nil {
		var be *BindError
		if errors.As(err, &be) {
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: be.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	sql := ast.SQL(q)
	key := ast.HashOf(q)
	res, hit := h.Cache.Get(key, sql)
	if !hit {
		res, err = engine.Exec(h.DB, q)
		if err != nil {
			// The closure can contain queries the dataset cannot answer
			// (e.g. a column the sample lacks); that is a client-state
			// problem, not a server fault.
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: "exec: " + err.Error()})
			return
		}
		h.Cache.Put(key, sql, res)
	}

	resp := QueryResponse{
		SQL:        sql,
		Cols:       res.Cols,
		Rows:       rowsJSON(res),
		RowCount:   len(res.Rows),
		Cache:      "miss",
		CacheStats: h.Cache.Stats(),
	}
	if hit {
		resp.Cache = "hit"
	}
	writeJSON(w, http.StatusOK, resp)
}

// DebugInfo is the body of GET /debug.
type DebugInfo struct {
	Interfaces []DebugInterface `json:"interfaces"`
}

// DebugInterface is one interface's serving counters.
type DebugInterface struct {
	ID      string     `json:"id"`
	Queries uint64     `json:"queries"`
	Cache   CacheStats `json:"cache"`
}

func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	info := DebugInfo{Interfaces: []DebugInterface{}}
	for _, h := range s.reg.List() {
		info.Interfaces = append(info.Interfaces, DebugInterface{
			ID:      h.ID,
			Queries: h.Queries(),
			Cache:   h.Cache.Stats(),
		})
	}
	writeJSON(w, http.StatusOK, info)
}

// --- helpers.

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// rowsJSON converts engine values to JSON scalars (numbers, strings,
// booleans, null).
func rowsJSON(t *engine.Table) [][]any {
	out := make([][]any, len(t.Rows))
	for i, row := range t.Rows {
		jr := make([]any, len(row))
		for j, v := range row {
			switch v.Kind {
			case engine.KindNumber:
				jr[j] = v.Num
			case engine.KindString:
				jr[j] = v.Str
			case engine.KindBool:
				jr[j] = v.Bool
			default:
				jr[j] = nil
			}
		}
		out[i] = jr
	}
	return out
}
