package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/qlog"
)

// liveServer hosts the mined OLAP fixture behind a real store-backed
// ingester, so the rows endpoint exercises the full append + hot-swap
// path over HTTP.
func liveServer(t *testing.T, opts ...Option) (*httptest.Server, *api.Hosted, *api.Service) {
	t.Helper()
	reg := api.NewRegistry()
	ing := ingest.New(reg, ingest.Options{RowBatchSize: 2})
	l := &qlog.Log{}
	for _, sql := range []string{
		"SELECT carrier FROM ontime WHERE month = 1",
		"SELECT carrier FROM ontime WHERE month = 2",
		"SELECT carrier FROM ontime WHERE month = 3",
	} {
		l.Append(sql, "")
	}
	h, err := ing.Host("olap", "live rows", l, engine.OnTimeDB(50), core.DefaultLiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	svc := api.NewService(reg)
	svc.SetIngestor(ing)
	ts := httptest.NewServer(New(svc, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts, h, svc
}

func postRows(t *testing.T, url string, req api.RowsRequest, token string) (int, *api.RowsAck, *api.Error) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if token != "" {
		httpReq.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		var ack api.RowsAck
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, &ack, nil
	}
	var apiErr api.Error
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, nil, &apiErr
}

// ontimeRow is one 16-column ontime row as JSON scalars.
func ontimeRow(carrier string, month float64) []any {
	return []any{carrier, carrier, "CAP", "NYP", "CA", "NY",
		month, 1.0, 1.0, 10.0, 12.0, 8.0, 500.0, 1.0, 0.0, 0.0}
}

func TestRowsEndpointAppendsAndSwaps(t *testing.T) {
	ts, h, _ := liveServer(t)
	url := ts.URL + "/v1/interfaces/olap/rows?flush=1"
	code, ack, apiErr := postRows(t, url, api.RowsRequest{
		Table: "ontime",
		Rows:  [][]any{ontimeRow("AA", 1), ontimeRow("UA", 2)},
	}, "")
	if code != http.StatusAccepted || apiErr != nil {
		t.Fatalf("status %d, err %+v", code, apiErr)
	}
	if ack.Accepted != 2 || !ack.Flushed || ack.RowCount != 52 || ack.Epoch != 2 {
		t.Fatalf("ack = %+v", ack)
	}
	if h.Epoch() != 2 {
		t.Fatalf("interface epoch = %d after flush", h.Epoch())
	}

	// Error contract: unknown table is rows_rejected with 422.
	code, _, apiErr = postRows(t, url, api.RowsRequest{Table: "nope", Rows: [][]any{{1.0}}}, "")
	if code != http.StatusUnprocessableEntity || apiErr == nil || apiErr.Code != api.CodeRowsRejected {
		t.Fatalf("unknown table: status %d, err %+v", code, apiErr)
	}
	// Unknown interface is not_found.
	code, _, apiErr = postRows(t, ts.URL+"/v1/interfaces/ghost/rows", api.RowsRequest{Table: "t", Rows: [][]any{{1.0}}}, "")
	if code != http.StatusNotFound || apiErr == nil || apiErr.Code != api.CodeNotFound {
		t.Fatalf("unknown interface: status %d, err %+v", code, apiErr)
	}
}

func TestRowsEndpointRequiresAuth(t *testing.T) {
	ts, _, _ := liveServer(t, WithAuth(AuthConfig{Token: "tok"}))
	req := api.RowsRequest{Table: "ontime", Rows: [][]any{ontimeRow("AA", 1)}}
	code, _, apiErr := postRows(t, ts.URL+"/v1/interfaces/olap/rows", req, "")
	if code != http.StatusUnauthorized || apiErr.Code != api.CodeUnauthorized {
		t.Fatalf("no token: status %d, err %+v", code, apiErr)
	}
	code, _, apiErr = postRows(t, ts.URL+"/v1/interfaces/olap/rows", req, "wrong")
	if code != http.StatusForbidden || apiErr.Code != api.CodeForbidden {
		t.Fatalf("wrong token: status %d, err %+v", code, apiErr)
	}
	code, ack, _ := postRows(t, ts.URL+"/v1/interfaces/olap/rows?flush=1", req, "tok")
	if code != http.StatusAccepted || ack.Accepted != 1 {
		t.Fatalf("right token: status %d, ack %+v", code, ack)
	}
}

// snapPersister is an in-memory api.Persister for transport tests.
type snapPersister struct{ fail bool }

func (p *snapPersister) SaveAll() (*api.SnapshotResult, error) {
	if p.fail {
		return nil, errors.New("disk full")
	}
	return &api.SnapshotResult{Dir: "mem", Interfaces: []api.SnapshotInterface{{ID: "olap", Epoch: 1}}}, nil
}

func (p *snapPersister) Restore() (*api.RestoreResult, error) {
	return &api.RestoreResult{}, nil
}

func TestSnapshotEndpoint(t *testing.T) {
	// Without a persister the endpoint reports persistence_disabled.
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var apiErr api.Error
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented || apiErr.Code != api.CodePersistenceDisabled {
		t.Fatalf("no persister: status %d, err %+v", resp.StatusCode, apiErr)
	}

	// With one, the result round-trips; with auth, the default token
	// guards the endpoint.
	ts2, _, svc := liveServer(t, WithAuth(AuthConfig{Token: "tok"}))
	svc.SetPersister(&snapPersister{})

	resp, err = http.Post(ts2.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	status := resp.StatusCode
	resp.Body.Close()
	if status != http.StatusUnauthorized {
		t.Fatalf("unauthenticated snapshot: status %d, want 401", status)
	}

	req, _ := http.NewRequest(http.MethodPost, ts2.URL+"/v1/snapshot", nil)
	req.Header.Set("Authorization", "Bearer tok")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res api.SnapshotResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(res.Interfaces) != 1 || res.Interfaces[0].ID != "olap" {
		t.Fatalf("snapshot: status %d, res %+v", resp.StatusCode, res)
	}
}
