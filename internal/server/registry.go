// Package server is the live serving layer: it hosts mined interfaces
// over HTTP so the pages htmlgen compiles are backed by a real exec()
// endpoint instead of a stub. The split follows the classic web-system
// architecture — a stateless HTTP front binds widget state onto the
// interface's query template (via internal/ast paths), a shared
// immutable engine executes the bound query, and an LRU of results
// keyed by canonical AST hash absorbs repeated widget states.
//
// Concurrency model: a Registry is safe for concurrent use. Hosted
// interfaces are registered before (or while) serving; each Hosted
// holds only immutable mined state (interface, dataset) plus two
// internally synchronized members (the lazily compiled page and the
// result cache), so request handlers never take a lock around query
// execution.
package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
)

// Hosted is one mined interface registered for serving: the interface,
// the dataset its queries run against, and the serving-side state (page
// cache, result cache, counters).
type Hosted struct {
	ID    string
	Title string

	// Iface and DB are treated as immutable once hosted: the handlers
	// only read them. Do not mutate a DB after registering it.
	Iface *core.Interface
	DB    *engine.DB

	// Cache is the per-interface result LRU keyed by canonical AST
	// hash. Exposed for stats; handlers use it internally.
	Cache *Cache

	queries atomic.Uint64 // total POST /query requests served

	pageMu sync.RWMutex // guards lazy compilation of page
	page   string
}

// Queries returns the number of query requests this interface served.
func (h *Hosted) Queries() uint64 { return h.queries.Load() }

// Registry is a concurrency-safe collection of hosted interfaces keyed
// by ID. Reads (the per-request path) take a shared lock; registration
// takes the exclusive lock.
type Registry struct {
	mu        sync.RWMutex
	ifaces    map[string]*Hosted
	cacheSize int
}

// DefaultCacheSize is the per-interface result LRU capacity used when
// the registry was built with NewRegistry.
const DefaultCacheSize = 256

// NewRegistry returns an empty registry whose hosted interfaces get a
// result cache of DefaultCacheSize entries.
func NewRegistry() *Registry { return NewRegistryWithCache(DefaultCacheSize) }

// NewRegistryWithCache returns an empty registry with a custom
// per-interface result-cache capacity (0 disables result caching).
func NewRegistryWithCache(cacheSize int) *Registry {
	return &Registry{ifaces: make(map[string]*Hosted), cacheSize: cacheSize}
}

// Add hosts an interface under the given ID. IDs become one URL path
// segment (/interfaces/{id}/query), so they are restricted to letters,
// digits, '_', '-' and '.'. The database is shared, not copied: callers
// must stop mutating it before serving begins. Adding a duplicate or
// invalid ID or a nil interface/db is an error.
func (r *Registry) Add(id, title string, iface *core.Interface, db *engine.DB) (*Hosted, error) {
	if !validID(id) {
		return nil, fmt.Errorf("server: invalid interface id %q (want [A-Za-z0-9._-]+)", id)
	}
	if iface == nil || db == nil {
		return nil, fmt.Errorf("server: interface %q needs a non-nil interface and db", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.ifaces[id]; dup {
		return nil, fmt.Errorf("server: duplicate interface id %q", id)
	}
	h := &Hosted{ID: id, Title: title, Iface: iface, DB: db, Cache: NewCache(r.cacheSize)}
	r.ifaces[id] = h
	return h, nil
}

// validID reports whether the ID is non-empty and safe to embed as one
// URL path segment.
func validID(id string) bool {
	if id == "" {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return true
}

// Get returns the hosted interface with the given ID.
func (r *Registry) Get(id string) (*Hosted, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.ifaces[id]
	return h, ok
}

// List returns the hosted interfaces sorted by ID.
func (r *Registry) List() []*Hosted {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Hosted, 0, len(r.ifaces))
	for _, h := range r.ifaces {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of hosted interfaces.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ifaces)
}
