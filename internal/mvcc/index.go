// Secondary indexes over the version arena. An index on a column is a
// sorted run of (key, *RowVersion) entries plus an append-only tail:
// writers (under the store lock) append new versions' entries to the
// tail and occasionally fold the tail into a freshly-allocated sorted
// run, while every Publish captures an immutable (sorted, tail-prefix)
// snapshot into the view. Epoch-chain correctness needs no extra
// bookkeeping: a pinned view's snapshot physically cannot contain
// entries appended after its publish, and entries for versions retired
// at or before the view's epoch are dropped by the same VisibleAt
// filter materialization uses — so an index lookup at epoch E sees
// exactly the rows a scan at E sees.
//
// Keys normalize values into engine.Equal's equivalence classes:
// anything numerically coercible (numbers, numeric strings, bools)
// keys by its float64; everything else keys by its string form. NULLs
// are not indexed (SQL equality never matches them) and NaN is
// excluded on both sides (engine.Compare treats NaN as equal to every
// number, which no sorted structure can serve — those lookups fall
// back to the scan kernels).
package mvcc

import (
	"sort"
	"strings"

	"repro/internal/engine"
)

type ixEntry struct {
	num bool
	f   float64
	s   string
	rv  *RowVersion
}

// ixKeyOf normalizes a value into its index key, reporting ok=false
// for the unindexable cases (NULL, NaN).
func ixKeyOf(v engine.Value) (ixEntry, bool) {
	if v.IsNull() {
		return ixEntry{}, false
	}
	if f, ok := v.AsNumber(); ok {
		if f != f { // NaN
			return ixEntry{}, false
		}
		return ixEntry{num: true, f: f}, true
	}
	return ixEntry{s: v.String()}, true
}

func ixLess(a, b ixEntry) bool {
	if a.num != b.num {
		return a.num // numeric keys sort before string keys
	}
	if a.num {
		return a.f < b.f
	}
	return a.s < b.s
}

func ixEq(a, b ixEntry) bool {
	if a.num != b.num {
		return false
	}
	if a.num {
		return a.f == b.f
	}
	return a.s == b.s
}

// colIndex is the writer-side index state. All mutation happens under
// the store's writer lock; `sorted` is immutable once any view has
// snapshotted it (merges allocate a fresh slice).
type colIndex struct {
	pos    int // column position in Vals
	sorted []ixEntry
	tail   []ixEntry
}

// ixSnap is the immutable per-view snapshot of one column's index.
type ixSnap struct {
	sorted []ixEntry
	tail   []ixEntry
}

func (ix *colIndex) rebuild(versions []*RowVersion) {
	ix.sorted = ix.sorted[:0:0]
	ix.tail = nil
	for _, rv := range versions {
		if e, ok := ixKeyOf(rv.Vals[ix.pos]); ok {
			e.rv = rv
			ix.sorted = append(ix.sorted, e)
		}
	}
	sort.SliceStable(ix.sorted, func(i, j int) bool { return ixLess(ix.sorted[i], ix.sorted[j]) })
}

// maybeMerge folds the tail into a new sorted run once it is worth it.
// Small tails stay linear: lookups scan them after the binary search.
func (ix *colIndex) maybeMerge() {
	if len(ix.tail) < 64 || len(ix.tail)*4 < len(ix.sorted) {
		return
	}
	tail := append([]ixEntry(nil), ix.tail...)
	sort.SliceStable(tail, func(i, j int) bool { return ixLess(tail[i], tail[j]) })
	merged := make([]ixEntry, 0, len(ix.sorted)+len(tail))
	i, j := 0, 0
	for i < len(ix.sorted) && j < len(tail) {
		if ixLess(tail[j], ix.sorted[i]) {
			merged = append(merged, tail[j])
			j++
		} else {
			merged = append(merged, ix.sorted[i])
			i++
		}
	}
	merged = append(merged, ix.sorted[i:]...)
	merged = append(merged, tail[j:]...)
	ix.sorted = merged
	ix.tail = nil
}

// EnableIndex builds (or keeps) a secondary index on the named column,
// covering every version already in the arena. Returns false when the
// column does not exist. Called with the store's writer lock held.
func (t *Table) EnableIndex(col string) bool {
	pos := -1
	for i, c := range t.Cols {
		if strings.EqualFold(c, col) {
			pos = i
			break
		}
	}
	if pos < 0 {
		return false
	}
	key := strings.ToLower(t.Cols[pos])
	if t.indexes == nil {
		t.indexes = map[string]*colIndex{}
	}
	if _, ok := t.indexes[key]; ok {
		return true
	}
	ix := &colIndex{pos: pos}
	ix.rebuild(t.versions)
	t.indexes[key] = ix
	return true
}

// IndexedCols lists the indexed columns (lowercased, sorted).
func (t *Table) IndexedCols() []string {
	out := make([]string, 0, len(t.indexes))
	for k := range t.indexes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// indexAdd inserts one freshly-appended version into every index tail.
func (t *Table) indexAdd(rv *RowVersion) {
	for _, ix := range t.indexes {
		if e, ok := ixKeyOf(rv.Vals[ix.pos]); ok {
			e.rv = rv
			ix.tail = append(ix.tail, e)
		}
	}
}

// snapIndexes captures the per-view index snapshots at publish time,
// merging tails that have grown past the threshold first. Called with
// the store's writer lock held.
func (t *Table) snapIndexes() map[string]ixSnap {
	if len(t.indexes) == 0 {
		return nil
	}
	out := make(map[string]ixSnap, len(t.indexes))
	for k, ix := range t.indexes {
		ix.maybeMerge()
		out[k] = ixSnap{sorted: ix.sorted, tail: ix.tail[:len(ix.tail):len(ix.tail)]}
	}
	return out
}

// Lookup returns the positions (ascending indices into Table()'s rows)
// whose indexed column satisfies SQL equality with key at this view's
// epoch, or ok=false when no index covers the column or the key cannot
// be served (NaN). A NULL key is served as an empty result — equality
// with NULL is never true.
func (v *View) Lookup(col string, key engine.Value) ([]int32, bool) {
	if len(v.indexes) == 0 {
		return nil, false
	}
	snap, ok := v.indexes[strings.ToLower(col)]
	if !ok {
		return nil, false
	}
	if key.IsNull() {
		return nil, true
	}
	want, ok := ixKeyOf(key)
	if !ok {
		return nil, false
	}
	pos := v.posIndex()
	var out []int32
	lo := sort.Search(len(snap.sorted), func(i int) bool { return !ixLess(snap.sorted[i], want) })
	for i := lo; i < len(snap.sorted) && ixEq(snap.sorted[i], want); i++ {
		if rv := snap.sorted[i].rv; rv.VisibleAt(v.epoch) {
			if p, ok := pos[rv.RowID]; ok {
				out = append(out, p)
			}
		}
	}
	for _, e := range snap.tail {
		if ixEq(e, want) && e.rv.VisibleAt(v.epoch) {
			if p, ok := pos[e.rv.RowID]; ok {
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// posIndex lazily builds the rowid -> row position map over the
// materialized rows. Concurrent first calls may build it twice; the
// CAS keeps exactly one.
func (v *View) posIndex() map[uint64]int32 {
	if m := v.pos.Load(); m != nil {
		return *m
	}
	ids := v.materialize().ids
	m := make(map[uint64]int32, len(ids))
	for i, id := range ids {
		m[id] = int32(i)
	}
	v.pos.CompareAndSwap(nil, &m)
	return *v.pos.Load()
}

// Columnar returns the columnar projection of the view's visible rows,
// built at most once per view (per data epoch) and shared by every
// concurrent reader — the engine.ColumnarProvider plumbing for store
// snapshots.
func (v *View) Columnar() *engine.ColumnarTable {
	if c := v.col.Load(); c != nil {
		return c
	}
	ct := engine.BuildColumnar(v.Table())
	v.col.CompareAndSwap(nil, ct)
	return v.col.Load()
}
