package mvcc

import (
	"math"
	"testing"

	"repro/internal/engine"
)

// lookupSet runs a Lookup and returns the positions as a plain slice,
// failing the test when the index refuses to serve the column.
func lookupSet(t *testing.T, v *View, col string, key engine.Value) []int32 {
	t.Helper()
	pos, ok := v.Lookup(col, key)
	if !ok {
		t.Fatalf("Lookup(%s, %v) not served", col, key)
	}
	return pos
}

// scanSet is the oracle: positions whose column satisfies SQL equality
// with key, by scanning the materialized rows the way the filter
// kernels would.
func scanSet(v *View, col int, key engine.Value) []int32 {
	var out []int32
	for i, row := range v.Table().Rows {
		if engine.Equal(row[col], key) {
			out = append(out, int32(i))
		}
	}
	return out
}

func sameSet(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIndexMatchesScanAcrossEpochs pins the epoch-chain guarantee the
// tentpole rests on: after interleaved appends, updates and deletes, a
// lookup at any published epoch returns exactly what a scan of that
// epoch's rows returns — the pinned view never sees post-pin entries,
// the head never misses them.
func TestIndexMatchesScanAcrossEpochs(t *testing.T) {
	wt := NewTable("t", []string{"k", "x"})
	if !wt.EnableIndex("k") {
		t.Fatal("EnableIndex(k) = false")
	}
	ids := wt.Append([][]engine.Value{
		{engine.Num(1), engine.Num(10)},
		{engine.Num(2), engine.Num(20)},
		{engine.Num(1), engine.Num(30)},
		{engine.Str("a"), engine.Num(40)},
	}, 1)
	v1 := wt.Publish(1, 4)

	// Epoch 2: update row 0's key 1 -> 2, delete the string row.
	if err := wt.Mutate(
		[]Update{{RowID: ids[0], Vals: []engine.Value{engine.Num(2), engine.Num(10)}}},
		[]uint64{ids[3]}, 2); err != nil {
		t.Fatal(err)
	}
	v2 := wt.Publish(2, 0)

	// Epoch 3: append more rows, one sharing key 2.
	wt.Append([][]engine.Value{
		{engine.Num(2), engine.Num(50)},
		{engine.Str("a"), engine.Num(60)},
	}, 3)
	v3 := wt.Publish(3, 2)

	keys := []engine.Value{
		engine.Num(1), engine.Num(2), engine.Str("a"),
		engine.Str("2"), // numeric string: coerces, must hit key 2
		engine.Num(99),  // absent
	}
	for vi, v := range []*View{v1, v2, v3} {
		for _, key := range keys {
			got := lookupSet(t, v, "k", key)
			want := scanSet(v, 0, key)
			if !sameSet(got, want) {
				t.Errorf("epoch %d key %v: index %v, scan %v", vi+1, key, got, want)
			}
		}
	}

	// The pinned epoch-1 view still answers its original row set after
	// everything above: key 1 lives at two positions, the string row at
	// one.
	if got := lookupSet(t, v1, "k", engine.Num(1)); len(got) != 2 {
		t.Fatalf("pinned view key 1 positions = %v, want 2 entries", got)
	}
	if got := lookupSet(t, v1, "k", engine.Str("a")); len(got) != 1 {
		t.Fatalf("pinned view key a positions = %v, want 1 entry", got)
	}
	// And the head no longer serves the deleted string row's old
	// position but does serve the appended one.
	if got := lookupSet(t, v3, "k", engine.Str("a")); len(got) != 1 {
		t.Fatalf("head key a positions = %v, want the appended row only", got)
	}
}

// TestIndexUnindexableKeys: NULL keys are an empty (served) result,
// NaN keys fall back to the scan kernels, and NULL/NaN cell values
// never enter the index.
func TestIndexUnindexableKeys(t *testing.T) {
	wt := NewTable("t", []string{"k"})
	wt.EnableIndex("k")
	wt.Append([][]engine.Value{
		{engine.Null()},
		{engine.Num(math.NaN())},
		{engine.Num(5)},
	}, 1)
	v := wt.Publish(1, 3)

	if pos, ok := v.Lookup("k", engine.Null()); !ok || len(pos) != 0 {
		t.Fatalf("NULL key: pos=%v ok=%v, want empty served result", pos, ok)
	}
	if _, ok := v.Lookup("k", engine.Num(math.NaN())); ok {
		t.Fatal("NaN key must not be served by the index")
	}
	if _, ok := v.Lookup("missing", engine.Num(1)); ok {
		t.Fatal("unindexed column must not be served")
	}
	if got := lookupSet(t, v, "k", engine.Num(5)); !sameSet(got, []int32{2}) {
		t.Fatalf("key 5 positions = %v, want [2]", got)
	}
}

// TestIndexMergeThreshold drives the tail past the merge threshold and
// checks (a) lookups stay correct across the fold and (b) a view
// snapshotted before the merge still answers from its own run.
func TestIndexMergeThreshold(t *testing.T) {
	wt := NewTable("t", []string{"k", "x"})
	wt.EnableIndex("k")
	wt.Append(numRows(10, 0), 1)
	early := wt.Publish(1, 10)

	// Push well past the 64-entry tail threshold in several publishes.
	epoch := uint64(1)
	for b := 0; b < 5; b++ {
		epoch++
		wt.Append(numRows(40, float64(10+40*b)), epoch)
		wt.Publish(epoch, 40)
	}
	head := wt.Publish(epoch, 0)

	for _, k := range []float64{0, 9, 10, 57, 133, 209} {
		got := lookupSet(t, head, "k", engine.Num(k))
		want := scanSet(head, 0, engine.Num(k))
		if !sameSet(got, want) {
			t.Errorf("post-merge key %v: index %v, scan %v", k, got, want)
		}
	}
	// The pre-merge view still sees exactly its 10 rows.
	if got := lookupSet(t, early, "k", engine.Num(5)); !sameSet(got, []int32{5}) {
		t.Fatalf("pre-merge view key 5 = %v, want [5]", got)
	}
	if got := lookupSet(t, early, "k", engine.Num(57)); len(got) != 0 {
		t.Fatalf("pre-merge view sees post-pin key 57 at %v", got)
	}
}

// TestIndexCompactRebuild: compaction drops retired versions from the
// arena and rebuilds the index; head lookups stay exact and a pinned
// pre-compaction view keeps its own snapshot.
func TestIndexCompactRebuild(t *testing.T) {
	wt := NewTable("t", []string{"k", "x"})
	wt.EnableIndex("k")
	ids := wt.Append(numRows(8, 0), 1)
	v1 := wt.Publish(1, 8)
	if err := wt.Mutate(
		[]Update{{RowID: ids[2], Vals: []engine.Value{engine.Num(100), engine.Num(2)}}},
		[]uint64{ids[5], ids[6]}, 2); err != nil {
		t.Fatal(err)
	}
	wt.Publish(2, 0)
	if dropped := wt.Compact(); dropped != 3 {
		t.Fatalf("Compact dropped %d versions, want 3 (one superseded, two deleted)", dropped)
	}
	head := wt.Publish(3, 0)

	for _, k := range []float64{0, 2, 5, 100} {
		got := lookupSet(t, head, "k", engine.Num(k))
		want := scanSet(head, 0, engine.Num(k))
		if !sameSet(got, want) {
			t.Errorf("post-compact key %v: index %v, scan %v", k, got, want)
		}
	}
	// v1 predates the compaction AND the mutation; its lookups answer
	// the original rows.
	if got := lookupSet(t, v1, "k", engine.Num(5)); !sameSet(got, []int32{5}) {
		t.Fatalf("pinned view key 5 = %v after compact, want [5]", got)
	}
}

// TestIndexedColsReporting: EnableIndex is idempotent, rejects unknown
// columns and reports lowercased names.
func TestIndexedColsReporting(t *testing.T) {
	wt := NewTable("t", []string{"Alpha", "Beta"})
	if wt.EnableIndex("nope") {
		t.Fatal("EnableIndex on a missing column returned true")
	}
	if !wt.EnableIndex("ALPHA") || !wt.EnableIndex("alpha") {
		t.Fatal("EnableIndex not case-insensitive/idempotent")
	}
	cols := wt.IndexedCols()
	if len(cols) != 1 || cols[0] != "alpha" {
		t.Fatalf("IndexedCols = %v, want [alpha]", cols)
	}
}
