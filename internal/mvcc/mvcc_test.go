package mvcc

import (
	"fmt"
	"testing"

	"repro/internal/engine"
)

func numRows(n int, base float64) [][]engine.Value {
	out := make([][]engine.Value, n)
	for i := range out {
		out[i] = []engine.Value{engine.Num(base + float64(i)), engine.Num(float64(i))}
	}
	return out
}

func rowVal(t *testing.T, tab *engine.Table, i int) float64 {
	t.Helper()
	f, ok := tab.Rows[i][0].AsNumber()
	if !ok {
		t.Fatalf("row %d col 0 is not numeric: %v", i, tab.Rows[i][0])
	}
	return f
}

// TestVisibilityAcrossEpochs: a view at epoch E sees exactly the rows
// live at E — updates and deletes published later never leak in, and
// the replacement version is visible only from its begin epoch on.
func TestVisibilityAcrossEpochs(t *testing.T) {
	wt := NewTable("t", []string{"a", "x"})
	ids := wt.Append(numRows(4, 100), 1)
	v1 := wt.Publish(1, 4)
	if v1.NumRows() != 4 {
		t.Fatalf("epoch-1 view has %d rows, want 4", v1.NumRows())
	}

	if err := wt.Mutate(
		[]Update{{RowID: ids[0], Vals: []engine.Value{engine.Num(999), engine.Num(0)}}},
		[]uint64{ids[3]}, 2); err != nil {
		t.Fatal(err)
	}
	v2 := wt.Publish(2, 0)

	// The old view still serves the pre-mutation row set.
	if v1.NumRows() != 4 || rowVal(t, v1.Table(), 0) != 100 {
		t.Fatalf("pinned epoch-1 view changed: %d rows, row0=%v", v1.NumRows(), v1.Table().Rows[0])
	}
	// The new view sees the update and not the deleted row. The
	// replacement version lands at the end of the visible order (it is
	// the newest arena entry), keeping its identity.
	if v2.NumRows() != 3 {
		t.Fatalf("epoch-2 view has %d rows, want 3", v2.NumRows())
	}
	updated := -1
	for i, id := range v2.RowIDs() {
		if id == ids[0] {
			updated = i
		}
	}
	if updated < 0 {
		t.Fatalf("updated row lost its identity: ids=%v", v2.RowIDs())
	}
	if rowVal(t, v2.Table(), updated) != 999 {
		t.Fatalf("epoch-2 updated row = %v, want 999", v2.Table().Rows[updated])
	}
	for _, id := range v2.RowIDs() {
		if id == ids[3] {
			t.Fatal("deleted row still visible at epoch 2")
		}
	}
}

// TestMutateValidatesBeforeApplying: a set with one bad rowid must not
// partially apply.
func TestMutateValidatesBeforeApplying(t *testing.T) {
	wt := NewTable("t", []string{"a", "x"})
	ids := wt.Append(numRows(3, 0), 1)
	wt.Publish(1, 3)
	err := wt.Mutate(
		[]Update{{RowID: ids[0], Vals: []engine.Value{engine.Num(1), engine.Num(1)}}},
		[]uint64{777}, 2)
	if err == nil {
		t.Fatal("mutation with unknown delete rowid applied")
	}
	v := wt.Publish(2, 0)
	if v.NumRows() != 3 || rowVal(t, v.Table(), 0) != 0 {
		t.Fatalf("failed mutation left partial state: %d rows, row0=%v", v.NumRows(), v.Table().Rows[0])
	}
	if wt.MutGen() != 0 {
		t.Fatalf("failed mutation bumped mutGen to %d", wt.MutGen())
	}
	// Column-count mismatch is equally atomic.
	if err := wt.Mutate([]Update{{RowID: ids[1], Vals: []engine.Value{engine.Num(1)}}}, nil, 2); err == nil {
		t.Fatal("short update row accepted")
	}
}

// TestCompactKeepsOldViewsIntact: compaction drops retired versions
// from the writer arena but views published before it still hold their
// own arena slice, so their row sets are unchanged.
func TestCompactKeepsOldViewsIntact(t *testing.T) {
	wt := NewTable("t", []string{"a", "x"})
	ids := wt.Append(numRows(10, 0), 1)
	v1 := wt.Publish(1, 10)
	if err := wt.Mutate(nil, ids[:5], 2); err != nil {
		t.Fatal(err)
	}
	v2 := wt.Publish(2, 0)

	if wt.VersionCount() != 10 {
		t.Fatalf("arena = %d versions before compact, want 10", wt.VersionCount())
	}
	if dropped := wt.Compact(); dropped != 5 {
		t.Fatalf("Compact dropped %d, want 5", dropped)
	}
	if wt.VersionCount() != 5 || wt.LiveCount() != 5 {
		t.Fatalf("post-compact arena=%d live=%d, want 5/5", wt.VersionCount(), wt.LiveCount())
	}
	if dropped := wt.Compact(); dropped != 0 {
		t.Fatalf("idempotent Compact dropped %d", dropped)
	}
	// The pinned pre-compaction view still sees all 10 rows.
	if v1.NumRows() != 10 {
		t.Fatalf("pinned view lost rows to compaction: %d", v1.NumRows())
	}
	if v2.NumRows() != 5 {
		t.Fatalf("head view = %d rows, want 5", v2.NumRows())
	}
	// Post-compaction publishes keep working with stable identity.
	wt.Append(numRows(1, 500), 3)
	v3 := wt.Publish(3, 1)
	if v3.NumRows() != 6 || v3.RowIDs()[5] != ids[9]+1 {
		t.Fatalf("post-compact append: %d rows, last id %d", v3.NumRows(), v3.RowIDs()[5])
	}
}

// TestPublishAppendFastPath: an append publish onto a materialized
// head precomputes the new materialization by sharing the head's row
// prefix — same backing array, no per-row copy.
func TestPublishAppendFastPath(t *testing.T) {
	wt := NewTable("t", []string{"a", "x"})
	wt.Append(numRows(100, 0), 1)
	v1 := wt.Publish(1, 100)
	t1 := v1.Table() // materialize the head

	wt.Append(numRows(1, 1000), 2)
	v2 := wt.Publish(2, 1)
	t2 := v2.Table()
	if len(t2.Rows) != 101 {
		t.Fatalf("appended view has %d rows", len(t2.Rows))
	}
	if &t1.Rows[0][0] != &t2.Rows[0][0] {
		t.Fatal("append publish copied the shared row prefix")
	}
	// After a mutation the fast path must NOT extend the stale prefix.
	ids := v2.RowIDs()
	if err := wt.Mutate(nil, []uint64{ids[0]}, 3); err != nil {
		t.Fatal(err)
	}
	wt.Append(numRows(1, 2000), 3)
	v3 := wt.Publish(3, 1)
	if v3.NumRows() != 101 {
		t.Fatalf("post-mutation view has %d rows, want 101", v3.NumRows())
	}
}

// TestSeedRoundTrip: seeding with explicit rowids restores identity
// and the allocator never re-issues a live id.
func TestSeedRoundTrip(t *testing.T) {
	wt, err := Seed("t", []string{"a", "x"}, numRows(3, 0), []uint64{7, 3, 9}, 0, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	v := wt.Publish(5, 0)
	if got := v.RowIDs(); got[0] != 7 || got[1] != 3 || got[2] != 9 {
		t.Fatalf("seeded rowids = %v", got)
	}
	if wt.NextID() != 10 || wt.MutGen() != 4 {
		t.Fatalf("seeded allocator nextID=%d mutGen=%d", wt.NextID(), wt.MutGen())
	}
	if _, err := Seed("t", nil, numRows(2, 0), []uint64{5, 5}, 0, 0, 1); err == nil {
		t.Fatal("duplicate seeded rowids accepted")
	}
	if _, err := Seed("t", nil, numRows(2, 0), []uint64{5}, 0, 0, 1); err == nil {
		t.Fatal("misaligned rowid slice accepted")
	}
}

// TestMutationPublishBeatsRebuild pins the tentpole's perf claim: at a
// 1% mutation rate, publishing through Mutate is at least 5x cheaper
// than the pre-MVCC alternative — rebuilding the table wholesale
// (re-seeding every row as a fresh version, which is exactly what the
// old store's AddTable replacement path did).
func TestMutationPublishBeatsRebuild(t *testing.T) {
	const total = 20000
	const touched = total / 100 // 1% mutation rate
	rows := numRows(total, 0)

	wt, err := Seed("t", []string{"a", "x"}, rows, nil, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	wt.Publish(1, 0)

	updates := make([]Update, touched)
	for i := range updates {
		updates[i] = Update{RowID: uint64(i*100 + 1), Vals: []engine.Value{engine.Num(-1), engine.Num(-1)}}
	}

	const iters = 20
	mutate := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			epoch := uint64(i + 2)
			if err := wt.Mutate(updates, nil, epoch); err != nil {
				b.Fatal(err)
			}
			wt.Publish(epoch, 0)
			if i%iters == iters-1 {
				wt.Compact() // keep the arena bounded, as the persister does
			}
		}
	})
	rebuild := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The pre-MVCC publish: every row becomes a fresh version.
			nt, err := Seed("t", []string{"a", "x"}, rows, nil, 0, 0, uint64(i+2))
			if err != nil {
				b.Fatal(err)
			}
			nt.Publish(uint64(i+2), 0)
		}
	})

	perMutate := float64(mutate.NsPerOp())
	perRebuild := float64(rebuild.NsPerOp())
	t.Logf("mutation publish %.0f ns/op, table rebuild %.0f ns/op (%.1fx)",
		perMutate, perRebuild, perRebuild/perMutate)
	if perRebuild < 5*perMutate {
		t.Fatalf("mutation publish (%.0f ns) is not 5x cheaper than rebuild (%.0f ns) at %d/%d rows",
			perMutate, perRebuild, touched, total)
	}
}

// TestRowIDAndTableAlignment: RowIDs and Table come from one
// materialization, so index i always names the same row in both.
func TestRowIDAndTableAlignment(t *testing.T) {
	wt := NewTable("t", []string{"a", "x"})
	ids := wt.Append(numRows(50, 0), 1)
	if err := wt.Mutate(nil, []uint64{ids[10], ids[20]}, 2); err != nil {
		t.Fatal(err)
	}
	v := wt.Publish(2, 0)
	tab, vids := v.Table(), v.RowIDs()
	if len(tab.Rows) != len(vids) {
		t.Fatalf("rows/ids misaligned: %d vs %d", len(tab.Rows), len(vids))
	}
	for i, id := range vids {
		want := float64(id - 1) // seeded value a = base+index, ids are index+1
		if got := rowVal(t, tab, i); got != want {
			t.Fatalf("row %d: id %d but a = %v (want %v)", i, id, got, want)
		}
	}
}

func BenchmarkMutatePublish1Pct(b *testing.B) {
	const total = 20000
	wt, err := Seed("t", []string{"a", "x"}, numRows(total, 0), nil, 0, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	wt.Publish(1, 0)
	updates := make([]Update, total/100)
	for i := range updates {
		updates[i] = Update{RowID: uint64(i*100 + 1), Vals: []engine.Value{engine.Num(-1), engine.Num(-1)}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch := uint64(i + 2)
		if err := wt.Mutate(updates, nil, epoch); err != nil {
			b.Fatal(err)
		}
		wt.Publish(epoch, 0)
		if i%32 == 31 {
			wt.Compact()
		}
	}
}

var sinkErr error

func ExampleTable_Mutate() {
	wt := NewTable("t", []string{"a"})
	ids := wt.Append([][]engine.Value{{engine.Num(1)}, {engine.Num(2)}}, 1)
	wt.Publish(1, 2)
	sinkErr = wt.Mutate([]Update{{RowID: ids[0], Vals: []engine.Value{engine.Num(10)}}}, []uint64{ids[1]}, 2)
	v := wt.Publish(2, 0)
	fmt.Println(v.NumRows(), v.Table().Rows[0][0].String())
	// Output: 1 10
}
