// Package mvcc is the versioned row storage under internal/store: every
// row of a table is a chain of RowVersions carrying (rowid,
// begin-epoch, end-epoch) visibility metadata, so a snapshot taken at
// data epoch E sees exactly the rows that were live at E. Appends,
// updates and deletes all publish in O(rows-touched) — an UPDATE or
// DELETE retires the old version by stamping its end epoch and (for
// updates) appends a replacement version, never rewriting the table —
// while readers pinned to older epochs keep serving their exact row
// set race-free: Begin and Vals are immutable after append, and the
// end epoch moves exactly once, from "live" to an epoch strictly
// greater than any epoch a pinned reader filters by.
//
// The split mirrors internal/store's reader/writer discipline:
//
//   - Table is the writer-side state (version arena, live-row index,
//     rowid allocator). All its methods are called with the store's
//     writer lock held.
//   - View is the immutable per-epoch read handle the store publishes.
//     Materialize lazily flattens the visible versions into a plain
//     *engine.Table (cached, built at most once per view), so the
//     query engine keeps executing against ordinary tables and the
//     epoch-keyed result caches above stay correct by construction.
package mvcc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// RowVersion is one immutable version of one row. Begin, RowID and
// Vals never change after the version is appended; end is stamped at
// most once (zero means "still live") with an epoch strictly greater
// than the begin epoch, which is what makes concurrent visibility
// checks against old epochs race-free.
type RowVersion struct {
	RowID uint64         // stable row identity across versions
	Begin uint64         // first epoch this version is visible at
	Vals  []engine.Value // the row payload; immutable

	end atomic.Uint64 // 0 = live; otherwise first epoch NOT visible at
}

// End returns the retirement epoch (0 while live).
func (rv *RowVersion) End() uint64 { return rv.end.Load() }

// Live reports whether the version has not been retired.
func (rv *RowVersion) Live() bool { return rv.end.Load() == 0 }

// VisibleAt reports whether the version is part of the row set at
// epoch e: born at or before e, and not retired at or before e.
func (rv *RowVersion) VisibleAt(e uint64) bool {
	if rv.Begin > e {
		return false
	}
	end := rv.end.Load()
	return end == 0 || end > e
}

// retire stamps the end epoch. Called only by the writer (under the
// store lock), and only once per version.
func (rv *RowVersion) retire(epoch uint64) { rv.end.Store(epoch) }

// Update is one row replacement in a mutation set: the row identified
// by RowID gets a new version holding Vals.
type Update struct {
	RowID uint64
	Vals  []engine.Value
}

// Table is the writer-side versioned table. Every method is called
// with the owning store's writer lock held; readers never touch a
// Table — they hold Views.
type Table struct {
	Name string
	Cols []string

	versions []*RowVersion          // the arena, in append order
	live     map[uint64]*RowVersion // rowid -> current live version
	nextID   uint64                 // next rowid to assign
	mutGen   uint64                 // bumped by every Mutate publish
	head     *View                  // most recently published view
	indexes  map[string]*colIndex   // secondary indexes (index.go), keyed by lowercased column
}

// NewTable returns an empty writer table. RowIDs start at 1.
func NewTable(name string, cols []string) *Table {
	return &Table{Name: name, Cols: cols, live: map[uint64]*RowVersion{}, nextID: 1}
}

// Seed returns a writer table pre-populated with rows that are all
// live from epoch `begin` on, carrying the given rowids — the restore
// path, where identity must round-trip so replicated mutations keep
// applying after a crash. ids may be nil (fresh sequential ids are
// assigned); nextID/mutGen of zero derive sane defaults.
func Seed(name string, cols []string, rows [][]engine.Value, ids []uint64, nextID, mutGen, begin uint64) (*Table, error) {
	t := NewTable(name, cols)
	if ids != nil && len(ids) != len(rows) {
		return nil, fmt.Errorf("mvcc: table %q: %d rows but %d rowids", name, len(rows), len(ids))
	}
	var maxID uint64
	for i, r := range rows {
		id := uint64(i) + 1
		if ids != nil {
			id = ids[i]
		}
		if id > maxID {
			maxID = id
		}
		rv := &RowVersion{RowID: id, Begin: begin, Vals: r}
		if _, dup := t.live[id]; dup {
			return nil, fmt.Errorf("mvcc: table %q: duplicate rowid %d", name, id)
		}
		t.versions = append(t.versions, rv)
		t.live[id] = rv
	}
	t.nextID = maxID + 1
	if nextID > t.nextID {
		t.nextID = nextID
	}
	t.mutGen = mutGen
	return t, nil
}

// NextID returns the next rowid the table would assign.
func (t *Table) NextID() uint64 { return t.nextID }

// MutGen returns the mutation generation: how many Mutate publishes
// the table has absorbed. The differential-snapshot cutter compares it
// against the last save to decide whether a tail-append delta is still
// sound.
func (t *Table) MutGen() uint64 { return t.mutGen }

// LiveCount returns the number of live rows (without materializing).
func (t *Table) LiveCount() int { return len(t.live) }

// VersionCount returns the arena length, live and retired versions
// both — Compact shrinks it.
func (t *Table) VersionCount() int { return len(t.versions) }

// Append adds rows as new live versions beginning at epoch, assigning
// sequential rowids, and returns the assigned ids. RowIDs are assigned
// in row order, so the owner, its followers and the restore path all
// converge on the same identities from the same publication stream.
func (t *Table) Append(rows [][]engine.Value, epoch uint64) []uint64 {
	ids := make([]uint64, len(rows))
	for i, r := range rows {
		id := t.nextID
		t.nextID++
		rv := &RowVersion{RowID: id, Begin: epoch, Vals: r}
		t.versions = append(t.versions, rv)
		t.live[id] = rv
		t.indexAdd(rv)
		ids[i] = id
	}
	return ids
}

// Mutate applies one mutation set at epoch: every update retires the
// row's current version and appends a replacement (same rowid, new
// begin), every delete just retires. Cost is O(rows touched) — the
// arena and the untouched rows are never copied. A rowid that has no
// live version is an error (on the owner that's a caller bug; on a
// follower it means the copy diverged), and nothing is applied
// partially: validation runs before the first retire.
func (t *Table) Mutate(updates []Update, deletes []uint64, epoch uint64) error {
	for _, u := range updates {
		if _, ok := t.live[u.RowID]; !ok {
			return fmt.Errorf("mvcc: table %q: update of unknown rowid %d", t.Name, u.RowID)
		}
		if len(u.Vals) != len(t.Cols) {
			return fmt.Errorf("mvcc: table %q has %d columns, update of rowid %d has %d",
				t.Name, len(t.Cols), u.RowID, len(u.Vals))
		}
	}
	for _, id := range deletes {
		if _, ok := t.live[id]; !ok {
			return fmt.Errorf("mvcc: table %q: delete of unknown rowid %d", t.Name, id)
		}
	}
	for _, u := range updates {
		old := t.live[u.RowID]
		old.retire(epoch)
		rv := &RowVersion{RowID: u.RowID, Begin: epoch, Vals: u.Vals}
		t.versions = append(t.versions, rv)
		t.live[u.RowID] = rv
		t.indexAdd(rv)
	}
	for _, id := range deletes {
		t.live[id].retire(epoch)
		delete(t.live, id)
	}
	t.mutGen++
	return nil
}

// Publish caps the arena at its current length and returns the
// immutable view of the table at epoch. Append fast-path: when the
// previous head is already materialized and the publish was pure
// appends (rowsAdded > 0, same mutGen), the new view's materialization
// is precomputed by extending the head's flattened rows in O(batch) —
// the same backing-array prefix sharing the pre-MVCC store used —
// instead of leaving a lazy O(live-rows) rebuild for the next reader.
func (t *Table) Publish(epoch uint64, rowsAdded int) *View {
	v := &View{
		name:     t.Name,
		cols:     t.Cols,
		epoch:    epoch,
		versions: t.versions[:len(t.versions):len(t.versions)],
		indexes:  t.snapIndexes(),
	}
	if prev := t.head; prev != nil && rowsAdded > 0 && prev.mutGen == t.mutGen {
		if m := prev.mat.Load(); m != nil {
			added := t.versions[len(t.versions)-rowsAdded:]
			rows := m.tab.Rows
			ids := m.ids
			for _, rv := range added {
				rows = append(rows, rv.Vals)
				ids = append(ids, rv.RowID)
			}
			v.mat.Store(&matState{
				tab: &engine.Table{Name: t.Name, Cols: t.Cols, Rows: rows},
				ids: ids,
			})
		}
	}
	v.mutGen = t.mutGen
	t.head = v
	return v
}

// Compact folds fully-superseded versions out of the arena: a fresh
// versions slice keeps only the live versions (same *RowVersion
// structs — retirement stamps already written stay visible to old
// views, which hold their own slice of the old arena). Relative order
// of live rows is preserved, so the visible row order of the head
// epoch is unchanged and persistence captures are byte-identical
// before and after. No epoch or mutation-generation bump: compaction
// is pure memory reclamation, invisible to readers and replicas.
// Returns how many retired versions were dropped.
func (t *Table) Compact() int {
	if len(t.versions) == len(t.live) {
		return 0
	}
	kept := make([]*RowVersion, 0, len(t.live))
	for _, rv := range t.versions {
		if rv.Live() {
			kept = append(kept, rv)
		}
	}
	dropped := len(t.versions) - len(kept)
	t.versions = kept
	// Rebuild indexes over the surviving versions: retired entries drop
	// out. Safe for every future epoch (a retired version's end is <=
	// the current epoch, so no later view could see it anyway); views
	// already published keep their own snapshots of the old runs.
	for _, ix := range t.indexes {
		ix.rebuild(t.versions)
	}
	return dropped
}

// matState is a view's cached materialization: the flattened visible
// rows plus the rowid aligned with each row. Built at most once per
// view and published atomically, so Table() and RowIDs() always agree
// on row order.
type matState struct {
	tab *engine.Table
	ids []uint64
}

// View is one immutable published table version: the arena prefix as
// of the publish, filtered by visibility at the view's epoch. Views
// are safe for concurrent use; materialization is lazy with
// double-checked locking.
type View struct {
	name     string
	cols     []string
	epoch    uint64
	mutGen   uint64
	versions []*RowVersion
	indexes  map[string]ixSnap // per-publish secondary index snapshots (index.go)

	mu  sync.Mutex // serializes the one-time materialization
	mat atomic.Pointer[matState]
	pos atomic.Pointer[map[uint64]int32]     // lazy rowid -> row position
	col atomic.Pointer[engine.ColumnarTable] // lazy columnar projection
}

// Name returns the table's declared (original-case) name.
func (v *View) Name() string { return v.name }

// Epoch returns the data epoch the view was published at.
func (v *View) Epoch() uint64 { return v.epoch }

// Table returns the flattened visible rows as a plain *engine.Table —
// the drop-in execution target for engine.Exec. The first call per
// view pays one O(visible-rows) scan; later calls return the cached
// table. Callers must treat the result as immutable.
func (v *View) Table() *engine.Table { return v.materialize().tab }

// RowIDs returns the rowid for each row of Table(), index-aligned —
// how the DML path maps "row i matched the predicate" to a stable
// identity that followers and the WAL replay can re-apply.
func (v *View) RowIDs() []uint64 { return v.materialize().ids }

// NumRows returns the visible row count (materializing if needed).
func (v *View) NumRows() int { return len(v.materialize().ids) }

func (v *View) materialize() *matState {
	if m := v.mat.Load(); m != nil {
		return m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if m := v.mat.Load(); m != nil {
		return m
	}
	rows := make([][]engine.Value, 0, len(v.versions))
	ids := make([]uint64, 0, len(v.versions))
	for _, rv := range v.versions {
		if rv.VisibleAt(v.epoch) {
			rows = append(rows, rv.Vals)
			ids = append(ids, rv.RowID)
		}
	}
	m := &matState{tab: &engine.Table{Name: v.name, Cols: v.cols, Rows: rows}, ids: ids}
	v.mat.Store(m)
	return m
}
