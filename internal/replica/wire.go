package replica

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/api"
	"repro/internal/ingest"
	"repro/pi/client"
)

// The replication wire contract, mounted under the shard-admin
// surface (/v1/shard/, same bearer-token guard):
//
//	POST /v1/shard/interfaces/{id}/follow    — seed frame (octet-stream + term/owner headers)
//	POST /v1/shard/interfaces/{id}/apply     — one streamed event (gob)
//	POST /v1/shard/interfaces/{id}/promote   — failover CAS: {term, targets}
//	POST /v1/shard/interfaces/{id}/demote    — lost a term race: {to, term}
//	POST /v1/shard/interfaces/{id}/unfollow  — drop the follower copy
//	POST /v1/shard/interfaces/{id}/targets   — owner's follower set: {targets}
//	GET  /v1/shard/interfaces/{id}/replica   — one interface's status
//	GET  /v1/shard/replication               — every tracked interface's status
//
// Seed frames reuse the checksummed store.Encode format the accept
// path uses; streamed events are gob (they carry engine values, which
// the snapshot payloads already gob-encode — one codec, one set of
// compatibility rules).
const (
	// termHeader / ownerHeader ride beside a binary seed frame.
	termHeader  = "Pi-Replica-Term"
	ownerHeader = "Pi-Replica-Owner"
	// maxEventBody caps a streamed event (one flushed batch).
	maxEventBody = 64 << 20
	// maxSeedBody caps a seed frame, matching the shard accept cap.
	maxSeedBody = 256 << 20
)

// Event is one streamed replication publish on the wire: the owner's
// identity and fencing term around the ingestion-layer publication.
type Event struct {
	ID    string
	Term  uint64
	Owner string
	Pub   ingest.Publication
}

// EncodeEvent serializes an event for the apply endpoint.
func EncodeEvent(ev Event) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ev); err != nil {
		return nil, fmt.Errorf("replica: encode event: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeEvent deserializes an apply body.
func DecodeEvent(raw []byte) (Event, error) {
	var ev Event
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&ev); err != nil {
		return Event{}, fmt.Errorf("replica: decode event: %w", err)
	}
	return ev, nil
}

// TargetsRequest is the body of the targets endpoint.
type TargetsRequest struct {
	Targets []string `json:"targets"`
}

// PromoteRequest is the body of the promote endpoint.
type PromoteRequest struct {
	Term    uint64          `json:"term"`
	Targets []PromoteTarget `json:"targets,omitempty"`
}

// Register mounts the replication routes on the shard-admin mux.
// guard wraps each handler with the admin bearer-token check.
func (m *Manager) Register(mux *http.ServeMux, guard func(http.HandlerFunc) http.HandlerFunc) {
	mux.HandleFunc("POST /v1/shard/interfaces/{id}/follow", guard(m.handleFollow))
	mux.HandleFunc("POST /v1/shard/interfaces/{id}/apply", guard(m.handleApply))
	mux.HandleFunc("POST /v1/shard/interfaces/{id}/promote", guard(m.handlePromote))
	mux.HandleFunc("POST /v1/shard/interfaces/{id}/demote", guard(m.handleDemote))
	mux.HandleFunc("POST /v1/shard/interfaces/{id}/unfollow", guard(m.handleUnfollow))
	mux.HandleFunc("POST /v1/shard/interfaces/{id}/targets", guard(m.handleTargets))
	mux.HandleFunc("GET /v1/shard/interfaces/{id}/replica", guard(m.handleStatus))
	mux.HandleFunc("GET /v1/shard/replication", guard(m.handleStatusAll))
}

func readBody(w http.ResponseWriter, r *http.Request, cap int64) ([]byte, *api.Error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, cap))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, api.Errf(api.CodePayloadTooLarge, http.StatusRequestEntityTooLarge,
				"body exceeds %d bytes", maxErr.Limit)
		}
		return nil, api.Errf(api.CodeBadRequest, http.StatusBadRequest, "read body: %v", err)
	}
	return raw, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	e := api.FromErr(err)
	writeJSON(w, e.Status, e)
}

func (m *Manager) handleFollow(w http.ResponseWriter, r *http.Request) {
	frame, aerr := readBody(w, r, maxSeedBody)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	term, _ := strconv.ParseUint(r.Header.Get(termHeader), 10, 64)
	owner := r.Header.Get(ownerHeader)
	st, err := m.Follow(frame, term, owner)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (m *Manager) handleApply(w http.ResponseWriter, r *http.Request) {
	raw, aerr := readBody(w, r, maxEventBody)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	ev, err := DecodeEvent(raw)
	if err != nil {
		writeErr(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest, "%v", err))
		return
	}
	if id := r.PathValue("id"); id != ev.ID {
		writeErr(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"event is for %q, path says %q", ev.ID, id))
		return
	}
	if err := m.Apply(ev); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"seq": ev.Pub.Seq})
}

func (m *Manager) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req PromoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest, "decode promote: %v", err))
		return
	}
	st, err := m.Promote(r.PathValue("id"), req.Term, req.Targets)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (m *Manager) handleDemote(w http.ResponseWriter, r *http.Request) {
	var req DemoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest, "decode demote: %v", err))
		return
	}
	if err := m.Demote(r.PathValue("id"), req); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": r.PathValue("id"), "movedTo": req.To})
}

func (m *Manager) handleUnfollow(w http.ResponseWriter, r *http.Request) {
	if err := m.Unfollow(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": r.PathValue("id")})
}

func (m *Manager) handleTargets(w http.ResponseWriter, r *http.Request) {
	var req TargetsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest, "decode targets: %v", err))
		return
	}
	if err := m.SetTargets(r.PathValue("id"), req.Targets); err != nil {
		writeErr(w, err)
		return
	}
	st, err := m.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := m.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (m *Manager) handleStatusAll(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.StatusAll())
}

// --- the wire client: owners stream to followers with it, routers
// drive failover with it.

// Client speaks the replication wire contract against one shard.
type Client struct {
	base  string
	token string
	hc    *http.Client
}

// NewClient returns a client for the shard at base.
func NewClient(base, token string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, token: token, hc: hc}
}

func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("replica: build request: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	// Replication responses are small JSON acks on a latency-critical
	// path (the event ship rides inside the owner's write ack).
	// Compressing them costs more than it saves — opt out of the
	// transport's transparent gzip so the peer answers identity.
	req.Header.Set("Accept-Encoding", "identity")
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("replica: %s %s%s: %w", method, c.base, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		// One error-envelope contract fleet-wide: decode exactly like
		// the SDK decodes v1 failures.
		return client.DecodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("replica: decode %s%s response: %w", c.base, path, err)
	}
	return nil
}

func ifacePath(id, op string) string {
	return "/v1/shard/interfaces/" + url.PathEscape(id) + "/" + op
}

// Follow ships a seed frame for id.
func (c *Client) Follow(ctx context.Context, id string, frame []byte, term uint64, owner string) (*StatusResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+ifacePath(id, "follow"),
		bytes.NewReader(frame))
	if err != nil {
		return nil, fmt.Errorf("replica: build follow: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(termHeader, strconv.FormatUint(term, 10))
	req.Header.Set(ownerHeader, owner)
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: follow %q at %s: %w", id, c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, client.DecodeError(resp)
	}
	var out StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("replica: decode follow response: %w", err)
	}
	return &out, nil
}

// Apply streams one event.
func (c *Client) Apply(ctx context.Context, ev Event) error {
	raw, err := EncodeEvent(ev)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, ifacePath(ev.ID, "apply"), "application/octet-stream", raw, nil)
}

// Promote runs the failover CAS on a follower.
func (c *Client) Promote(ctx context.Context, id string, term uint64, targets []PromoteTarget) (*StatusResponse, error) {
	body, _ := json.Marshal(PromoteRequest{Term: term, Targets: targets})
	var out StatusResponse
	if err := c.do(ctx, http.MethodPost, ifacePath(id, "promote"), "application/json", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Demote asks a shard to give up a lost owner claim.
func (c *Client) Demote(ctx context.Context, id, to string, term uint64) error {
	body, _ := json.Marshal(DemoteRequest{To: to, Term: term})
	return c.do(ctx, http.MethodPost, ifacePath(id, "demote"), "application/json", body, nil)
}

// Unfollow drops a follower copy.
func (c *Client) Unfollow(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, ifacePath(id, "unfollow"), "application/json", []byte("{}"), nil)
}

// Targets declares the owner's follower set.
func (c *Client) Targets(ctx context.Context, id string, addrs []string) (*StatusResponse, error) {
	body, _ := json.Marshal(TargetsRequest{Targets: addrs})
	var out StatusResponse
	if err := c.do(ctx, http.MethodPost, ifacePath(id, "targets"), "application/json", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Status fetches one interface's replication status.
func (c *Client) Status(ctx context.Context, id string) (*StatusResponse, error) {
	var out StatusResponse
	if err := c.do(ctx, http.MethodGet, ifacePath(id, "replica"), "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StatusAll fetches every tracked interface's status on a shard.
func (c *Client) StatusAll(ctx context.Context) ([]StatusResponse, error) {
	var out []StatusResponse
	if err := c.do(ctx, http.MethodGet, "/v1/shard/replication", "", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
