// Package replica keeps N warm followers per hosted interface and
// promotes one when the owner dies.
//
// The data plane rides the ingestion layer's publish hook: every
// epoch-bumping publish on an owner (log re-mine, row append, or bare
// epoch bump) is streamed synchronously to each in-sync follower as a
// replication Event carrying the interface's monotone sequence number
// — replicate-before-ack, so a write is only ever acknowledged after
// the followers that define "in sync" have applied it. A follower is
// therefore always a valid epoch-consistent snapshot of the owner: it
// is seeded with the same checksummed frame format the shard accept
// path uses (store.Encode/Decode), hosted at exactly the owner's
// epoch and sequence, and each applied event bumps its epoch in
// lockstep (the miner is deterministic, so re-applying the owner's
// batches reproduces the owner's interface bit for bit).
//
// The control plane is term-fenced, in the generalization of the
// shard package's migration CAS: every promotion increments a
// per-interface term, a follower rejects replication traffic from an
// owner with an older term (not_owner, carrying the new owner's
// address), and an ex-owner that sees that rejection demotes itself —
// its un-replicated tail is discarded and its clients are redirected
// with the same structured moved/not_owner contract migrations use. A
// follower that detects a gap in its stream marks itself stale
// (reads answer replica_lagging) until the owner re-seeds it.
//
// Availability over strict durability: a follower that cannot be
// reached is marked out-of-sync and the ack proceeds on the owner —
// the owner never blocks writes on a dead follower. The window where
// an acked write exists only on the owner is bounded by the router's
// refresh cadence (which re-targets and re-seeds the follower).
package replica

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/store"
)

// Config wires a Manager to its node.
type Config struct {
	// Self is this shard's advertised base URL (normalized).
	Self string
	// Token authenticates outbound replication calls to peer shards.
	Token string
	// Ing is the node's ingester: seeds capture from it, applies land
	// in it.
	Ing *ingest.Ingester
	// Reg is the node's registry, for epoch reads and copy teardown.
	Reg *api.Registry
	// Live/Funcs mirror the node's accept options: how seeded
	// snapshots re-mine and which table-valued functions re-attach.
	Live  core.LiveOptions
	Funcs func(id string, st *store.Store)
	// Demote is called (on its own goroutine, no locks held) when this
	// shard learns it no longer owns id: tombstone to newOwner, then
	// drop the local copy. The manager has already flipped the
	// interface to a stale follower, so the window before Demote
	// completes answers not_owner/replica_lagging, never a silent ack.
	Demote func(id, newOwner string)
	// Drop removes a local copy (and any durable snapshot) without a
	// tombstone — the unfollow/reseed teardown. Missing copies are not
	// an error.
	Drop func(id string)
	// ClearTombstone is called after a seed hosts a copy here: an old
	// moved tombstone no longer applies.
	ClearTombstone func(id string)
	// Adopt, when set, durably installs an accepted seed frame (base
	// snapshot + manifest + WAL reset) before Follow acknowledges it —
	// a restarted follower then rebuilds the copy and resumes the
	// stream from its logged position instead of demanding a re-seed.
	Adopt func(snap *store.Snapshot, rs *store.ReplState) error
	// Persist, when set, flushes the interface's replication control
	// state (role, term, owner, follower positions) to durable storage
	// after a control-plane change, so a crash right after a failover
	// remembers who won. Called without manager locks held.
	Persist func(id string)
	// CatchUp, when set, returns this owner's logged publications with
	// sequence in (fromSeq, head] — the WAL tail a trailing follower
	// needs. ok=false means the log does not cover the range and only
	// a full seed helps.
	CatchUp func(id string, fromSeq uint64) ([]ingest.Publication, bool)
	// HTTPClient carries replication traffic. Defaults to a 2-minute
	// budget (seeds move whole interfaces).
	HTTPClient *http.Client
	// ApplyTimeout bounds one streamed event send. Default 10s.
	ApplyTimeout time.Duration
	// MaxPending bounds the events buffered for a follower that is
	// mid-seed; overflow marks it stale for a fresh re-seed instead of
	// growing without bound. Default 4096.
	MaxPending int
}

// follower modes, owner side.
const (
	fNew     = iota // targeted, not yet seeded
	fSeeding        // a seed is in flight; live events buffer in pending
	fSynced         // streaming: has every acked publish up to seq
	fStale          // fell out of the stream; needs a fresh seed
)

type follower struct {
	addr    string
	mode    int
	seq     uint64
	pending []Event // events published while the seed was in flight
	lastErr string
}

// ifaceState is one interface's replication state on this shard.
// state.mu serializes the interface's control operations and its
// outbound stream; the ingestion feed lock is never taken while
// holding it (the publish hook holds the feed lock and then takes
// state.mu, so the reverse order would deadlock).
type ifaceState struct {
	mu        sync.Mutex
	role      string // api.RoleOwner | api.RoleFollower
	term      uint64
	owner     string // follower: the owner's base URL
	stale     bool   // follower: gap detected, awaiting re-seed
	seq       uint64 // follower: last applied sequence number
	pubSeq    uint64 // owner: last sequence number published to followers
	followers map[string]*follower

	// fullSeeds counts complete snapshot seeds shipped from this owner;
	// catchUps counts followers re-synced from the WAL instead. The
	// replica smoke test pins "a bounced follower does not force a full
	// re-seed" on these.
	fullSeeds uint64
	catchUps  uint64
}

// Manager is a shard's replication state machine: owner-side fan-out
// and seeding for interfaces it owns, follower-side apply and fencing
// for interfaces it warms. Interfaces with no explicit state are
// implicitly unreplicated owners — a fleet without -replicas behaves
// exactly as before this package existed.
type Manager struct {
	cfg Config

	mu     sync.Mutex
	states map[string]*ifaceState
}

// NewManager validates the config and returns a manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Ing == nil || cfg.Reg == nil {
		return nil, fmt.Errorf("replica: manager needs an ingester and a registry")
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("replica: manager needs the shard's advertised address")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 2 * time.Minute}
	}
	if cfg.ApplyTimeout <= 0 {
		cfg.ApplyTimeout = 10 * time.Second
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4096
	}
	return &Manager{cfg: cfg, states: map[string]*ifaceState{}}, nil
}

// Hook returns the ingest.PublishHook to install on the node's
// ingester: the owner half of the data plane.
func (m *Manager) Hook() ingest.PublishHook {
	return func(id string, p ingest.Publication) error { return m.publish(id, p) }
}

func (m *Manager) lookup(id string) *ifaceState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.states[id]
}

// ensure returns the interface's state, creating the implicit
// unreplicated-owner state if none exists.
func (m *Manager) ensure(id string) *ifaceState {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.states[id]
	if !ok {
		s = &ifaceState{role: api.RoleOwner, followers: map[string]*follower{}}
		m.states[id] = s
		registerMetrics(id, s)
	}
	return s
}

// Forget drops the interface's replication state (relinquish/delete
// teardown). The copy itself is the caller's business.
func (m *Manager) Forget(id string) {
	m.mu.Lock()
	delete(m.states, id)
	m.mu.Unlock()
}

// persist flushes the interface's control state durably (nil-safe).
// Never call it holding s.mu or a feed lock: the callback reads the
// live state back through Info, which takes both.
func (m *Manager) persist(id string) {
	if m.cfg.Persist != nil {
		m.cfg.Persist(id)
	}
}

// RestoreState re-adopts the replication control state a manifest
// carried across a restart: the role and fencing term the shard held,
// the owner it followed, and — on owners — the follower positions it
// knew. Restored followers resume non-stale at seq (the position the
// WAL replay reached), so the owner's next event either continues the
// stream or triggers a catch-up; restored followers-of-record start
// stale and re-sync on the next refresh.
func (m *Manager) RestoreState(id string, rs *store.ReplState, seq uint64) {
	s := m.ensure(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.role = rs.Role
	s.term = rs.Term
	s.owner = rs.Owner
	if rs.Role == api.RoleFollower {
		s.stale = false
		s.seq = seq
		return
	}
	for addr, fseq := range rs.Followers {
		s.followers[addr] = &follower{
			addr: addr, mode: fStale, seq: fseq,
			lastErr: "restored from manifest; awaiting re-sync",
		}
	}
}

// RoleOf reports the interface's role and, for followers, the owner's
// address. Untracked interfaces are owners.
func (m *Manager) RoleOf(id string) (role, owner string, stale bool) {
	s := m.lookup(id)
	if s == nil {
		return api.RoleOwner, "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.role, s.owner, s.stale
}

// client builds a wire client for a peer shard.
func (m *Manager) client(addr string) *Client {
	return NewClient(addr, m.cfg.Token, m.cfg.HTTPClient)
}

// --- owner side: publish fan-out and seeding.

// publish streams one owner publication to every follower. Called by
// the ingestion hook under the feed lock: per-interface ordering is
// inherited, and an error fails the triggering ack.
func (m *Manager) publish(id string, p ingest.Publication) error {
	s := m.lookup(id)
	if s == nil {
		return nil // unreplicated interface
	}
	s.mu.Lock()
	if s.role != api.RoleOwner {
		// Follower feeds never take writes (the node fences them), so a
		// publish here would be a test driving the ingester directly;
		// refuse the ack rather than forge a second stream.
		owner := s.owner
		s.mu.Unlock()
		return api.ErrNotOwner(id, owner)
	}
	s.pubSeq = p.Seq
	ev := Event{ID: id, Term: s.term, Owner: m.cfg.Self, Pub: p}
	var fenced *api.Error
	for _, fo := range s.followers {
		switch fo.mode {
		case fSeeding:
			if len(fo.pending) >= m.cfg.MaxPending {
				fo.mode = fStale
				fo.pending = nil
				fo.lastErr = "seed outpaced by writes; re-seeding"
				continue
			}
			fo.pending = append(fo.pending, ev)
		case fSynced:
			if err := m.sendEvent(fo, ev); err != nil {
				if e := notOwnerErr(err); e != nil {
					fenced = e
				}
			}
		}
	}
	if fenced != nil {
		m.fenceLocked(s, id, fenced.Addr)
		s.mu.Unlock()
		// Publish runs under the feed lock, which the persist callback
		// re-enters through Info; flush the demotion off this goroutine.
		go m.persist(id)
		return api.ErrNotOwner(id, fenced.Addr)
	}
	s.mu.Unlock()
	return nil
}

// sendEvent pushes one event to a synced follower, downgrading it on
// failure. Caller holds s.mu. Returns the send error (the caller only
// inspects it for fencing).
func (m *Manager) sendEvent(fo *follower, ev Event) error {
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.ApplyTimeout)
	defer cancel()
	if err := m.client(fo.addr).Apply(ctx, ev); err != nil {
		fo.mode = fStale
		fo.pending = nil
		fo.lastErr = err.Error()
		return err
	}
	fo.seq = ev.Pub.Seq
	fo.lastErr = ""
	return nil
}

// fenceLocked flips a fenced ex-owner to a stale follower of newOwner
// and schedules the local teardown. Caller holds s.mu. Writes fail
// with not_owner and reads with replica_lagging until Demote finishes
// (tombstone + drop), after which they answer moved.
func (m *Manager) fenceLocked(s *ifaceState, id, newOwner string) {
	s.role = api.RoleFollower
	s.owner = newOwner
	s.stale = true
	s.followers = map[string]*follower{}
	if m.cfg.Demote != nil {
		go m.cfg.Demote(id, newOwner)
	}
}

// notOwnerErr extracts a structured not_owner from a send error.
func notOwnerErr(err error) *api.Error {
	var e *api.Error
	if errors.As(err, &e) && e.Code == api.CodeNotOwner {
		return e
	}
	return nil
}

// SetTargets declares the follower set for an interface this shard
// owns. New targets are seeded in the background; removed ones get a
// best-effort unfollow; stale ones are re-seeded. The router calls
// this on every refresh, so seeding retries ride the refresh cadence.
func (m *Manager) SetTargets(id string, addrs []string) error {
	if _, ok := m.cfg.Reg.Get(id); !ok {
		return api.Errf(api.CodeNotFound, http.StatusNotFound, "unknown interface %q", id)
	}
	s := m.ensure(id)
	s.mu.Lock()
	if s.role != api.RoleOwner {
		owner := s.owner
		s.mu.Unlock()
		return api.ErrNotOwner(id, owner)
	}
	want := map[string]bool{}
	for _, a := range addrs {
		if a != "" && a != m.cfg.Self {
			want[a] = true
		}
	}
	var removed, seed []string
	for addr := range s.followers {
		if !want[addr] {
			delete(s.followers, addr)
			removed = append(removed, addr)
		}
	}
	for addr := range want {
		fo, ok := s.followers[addr]
		if !ok {
			fo = &follower{addr: addr, mode: fNew}
			s.followers[addr] = fo
		}
		if fo.mode == fNew || fo.mode == fStale {
			fo.mode = fSeeding
			fo.pending = nil
			seed = append(seed, addr)
		}
	}
	s.mu.Unlock()
	if len(removed) > 0 {
		go m.persist(id)
	}
	for _, addr := range removed {
		go func(addr string) {
			ctx, cancel := context.WithTimeout(context.Background(), m.cfg.ApplyTimeout)
			defer cancel()
			_ = m.client(addr).Unfollow(ctx, id)
		}(addr)
	}
	for _, addr := range seed {
		go m.seed(id, addr)
	}
	return nil
}

// seed ships a full snapshot frame to one follower and then drains
// the events that published while the transfer was in flight, leaving
// the follower synced. The capture happens under the feed lock, so
// every publish is either inside the frame (seq ≤ frame seq) or in
// the pending buffer (the follower was already in fSeeding before the
// capture) — no event can fall between.
func (m *Manager) seed(id, addr string) {
	fail := func(msg string) {
		s := m.lookup(id)
		if s == nil {
			return
		}
		s.mu.Lock()
		if fo := s.followers[addr]; fo != nil && fo.mode == fSeeding {
			fo.mode = fStale
			fo.pending = nil
			fo.lastErr = msg
		}
		s.mu.Unlock()
	}
	// A follower that already holds a consistent prefix of this stream
	// (it restarted and replayed its WAL) re-syncs from the owner's log
	// instead of taking the whole interface again.
	if m.cfg.CatchUp != nil && m.catchUp(id, addr) {
		return
	}
	if _, err := m.cfg.Ing.Flush(id); err != nil {
		fail(fmt.Sprintf("seed flush: %v", err))
		return
	}
	snap, err := m.cfg.Ing.Capture(id)
	if err != nil {
		fail(fmt.Sprintf("seed capture: %v", err))
		return
	}
	frame, err := store.Encode(snap)
	if err != nil {
		fail(fmt.Sprintf("seed encode: %v", err))
		return
	}
	s := m.lookup(id)
	if s == nil {
		return
	}
	s.mu.Lock()
	term := s.term
	s.mu.Unlock()
	budget := m.cfg.HTTPClient.Timeout
	if budget <= 0 {
		budget = 2 * time.Minute
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if _, err := m.client(addr).Follow(ctx, id, frame, term, m.cfg.Self); err != nil {
		fail(fmt.Sprintf("seed transfer: %v", err))
		return
	}
	// Drain what published during the transfer, in order, then go
	// synced. The drain holds s.mu, so the hook (which appends to
	// pending under s.mu) cannot interleave half-way.
	s.mu.Lock()
	defer s.mu.Unlock()
	fo := s.followers[addr]
	if fo == nil || fo.mode != fSeeding || s.role != api.RoleOwner {
		return // re-targeted, demoted or superseded while seeding
	}
	fo.seq = snap.Seq
	for _, ev := range fo.pending {
		if ev.Pub.Seq <= snap.Seq {
			continue // already inside the frame
		}
		if err := m.sendEvent(fo, ev); err != nil {
			return // sendEvent already downgraded the follower
		}
	}
	fo.pending = nil
	fo.mode = fSynced
	fo.lastErr = ""
	s.fullSeeds++
}

// catchUp tries to re-sync one targeted follower from this owner's
// WAL: probe the follower's position, ship the logged publications it
// is missing as ordinary stream events, drain anything that published
// meanwhile, and mark it synced. Returns false when only a full seed
// can help (no copy there, stale, diverged, or the log does not cover
// its position) — the caller then runs the seed path.
func (m *Manager) catchUp(id, addr string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.ApplyTimeout)
	st, err := m.client(addr).Status(ctx, id)
	cancel()
	if err != nil {
		return false
	}
	info := st.Info
	if info.Role != api.RoleFollower || info.Stale {
		return false
	}
	ourSeq, err := m.cfg.Ing.Seq(id)
	if err != nil || info.Seq > ourSeq {
		return false
	}
	pubs, ok := m.cfg.CatchUp(id, info.Seq)
	if !ok {
		return false
	}
	s := m.lookup(id)
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fo := s.followers[addr]
	if fo == nil || fo.mode != fSeeding || s.role != api.RoleOwner {
		return true // re-targeted, demoted or superseded; nothing to seed either
	}
	fo.seq = info.Seq
	for _, pub := range pubs {
		if pub.Seq <= fo.seq {
			continue
		}
		if err := m.sendEvent(fo, Event{ID: id, Term: s.term, Owner: m.cfg.Self, Pub: pub}); err != nil {
			return true // sendEvent downgraded it; the next refresh re-seeds
		}
	}
	// Drain what published while the catch-up ran (the hook buffers
	// into pending for fSeeding followers), exactly like seed's drain.
	for _, ev := range fo.pending {
		if ev.Pub.Seq <= fo.seq {
			continue
		}
		if err := m.sendEvent(fo, ev); err != nil {
			return true
		}
	}
	fo.pending = nil
	fo.mode = fSynced
	fo.lastErr = ""
	s.catchUps++
	return true
}

// Unhost tears the interface's replication down fleet-side before the
// owner deletes its copy: best-effort unfollow to every follower, then
// the local state is forgotten.
func (m *Manager) Unhost(id string) {
	s := m.lookup(id)
	if s == nil {
		return
	}
	s.mu.Lock()
	var addrs []string
	for addr := range s.followers {
		addrs = append(addrs, addr)
	}
	s.mu.Unlock()
	for _, addr := range addrs {
		ctx, cancel := context.WithTimeout(context.Background(), m.cfg.ApplyTimeout)
		_ = m.client(addr).Unfollow(ctx, id)
		cancel()
	}
	m.Forget(id)
}

// --- follower side: seed intake, stream apply, fencing.

// Follow hosts a seed frame as a follower copy at exactly the owner's
// epoch and sequence, replacing whatever copy was here. A local owner
// at the same or newer term refuses the seed (term_mismatch) — a
// newer-term seed legitimately supersedes it.
func (m *Manager) Follow(frame []byte, term uint64, owner string) (*StatusResponse, error) {
	snap, err := store.Decode(frame)
	if err != nil {
		return nil, api.Errf(api.CodeBadRequest, http.StatusBadRequest, "follow: %v", err)
	}
	id := snap.ID
	prep, err := m.cfg.Ing.PrepareSnapshot(snap, m.cfg.Live, m.cfg.Funcs)
	if err != nil {
		return nil, api.Errf(api.CodeRestoreFailed, http.StatusInternalServerError,
			"follow %q: %v", id, err)
	}
	s := m.ensure(id)
	s.mu.Lock()
	if _, hosted := m.cfg.Reg.Get(id); hosted && s.role == api.RoleOwner && s.term >= term {
		cur := s.term
		s.mu.Unlock()
		return nil, api.Errf(api.CodeTermMismatch, http.StatusConflict,
			"follow %q: this shard owns it at term %d (seed term %d)", id, cur, term)
	}
	s.mu.Unlock()
	if m.cfg.Drop != nil {
		m.cfg.Drop(id)
	}
	if _, err := m.cfg.Ing.HostPrepared(prep, snap.Epoch); err != nil {
		return nil, api.Errf(api.CodeRestoreFailed, http.StatusInternalServerError,
			"follow %q: %v", id, err)
	}
	s.mu.Lock()
	s.role = api.RoleFollower
	s.term = term
	s.owner = owner
	s.stale = false
	s.seq = snap.Seq
	s.followers = map[string]*follower{}
	s.mu.Unlock()
	// Make the seed durable before acking it: base + manifest + WAL
	// reset, with the follower's control state inside — a restart
	// rebuilds this copy and resumes the stream from its logged
	// position instead of demanding another full seed.
	if m.cfg.Adopt != nil {
		rs := &store.ReplState{Role: api.RoleFollower, Term: term, Owner: owner}
		if err := m.cfg.Adopt(snap, rs); err != nil {
			return nil, api.Errf(api.CodeWALFailed, http.StatusInternalServerError,
				"follow %q: persist seed: %v", id, err)
		}
	}
	if m.cfg.ClearTombstone != nil {
		m.cfg.ClearTombstone(id)
	}
	return m.Status(id)
}

// Apply lands one streamed event on a follower copy. Term fencing
// happens first: an event from an older term is rejected with
// not_owner (carrying who this follower believes owns the interface),
// a newer term is adopted (the sender won a promotion). A sequence
// gap or a divergent apply marks the follower stale and answers
// replica_out_of_sync, telling the owner to re-seed.
func (m *Manager) Apply(ev Event) error {
	s := m.lookup(ev.ID)
	if s == nil {
		return api.Errf(api.CodeNotFound, http.StatusNotFound,
			"no follower copy of %q here", ev.ID)
	}
	s.mu.Lock()
	if s.role != api.RoleFollower {
		addr := m.cfg.Self
		s.mu.Unlock()
		return api.ErrNotOwner(ev.ID, addr)
	}
	termAdopted := false
	switch {
	case ev.Term < s.term:
		owner := s.owner
		s.mu.Unlock()
		return api.ErrNotOwner(ev.ID, owner)
	case ev.Term > s.term:
		s.term = ev.Term
		s.owner = ev.Owner
		termAdopted = true
	case ev.Owner != s.owner && s.owner != "":
		// Same term, different claimed owner: split brain. Refuse both.
		owner := s.owner
		s.mu.Unlock()
		return api.ErrNotOwner(ev.ID, owner)
	}
	if s.stale {
		owner := s.owner
		s.mu.Unlock()
		return api.Errf(api.CodeReplicaOutOfSync, http.StatusConflict,
			"follower of %q is stale; re-seed it (owner %s)", ev.ID, owner)
	}
	s.mu.Unlock()
	if termAdopted {
		m.persist(ev.ID)
	}

	// The ingest apply takes the feed lock; state.mu must not be held
	// across it (the publish hook takes the locks in the other order).
	p := ev.Pub
	var err error
	switch {
	case len(p.Entries) > 0:
		err = m.cfg.Ing.ApplyBatch(ev.ID, p.Entries, p.Epoch, p.Seq)
	case len(p.Rows) > 0:
		err = m.cfg.Ing.ApplyRows(ev.ID, p.Rows, p.Epoch, p.Seq)
	case len(p.Muts) > 0:
		err = m.cfg.Ing.ApplyMutations(ev.ID, p.Muts, p.Epoch, p.Seq)
	default:
		err = m.cfg.Ing.ApplyBump(ev.ID, p.Epoch, p.Seq)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.stale = true
		return api.Errf(api.CodeReplicaOutOfSync, http.StatusConflict,
			"apply seq %d to follower of %q: %v", p.Seq, ev.ID, err)
	}
	s.seq = p.Seq
	return nil
}

// PromoteTarget names one surviving follower and the sequence number
// the promoting router observed on it — a survivor already at the new
// owner's sequence keeps streaming without a re-seed.
type PromoteTarget struct {
	Addr string `json:"addr"`
	Seq  uint64 `json:"seq"`
}

// Promote flips this follower to owner under a strictly newer term —
// the failover CAS. The epoch is bumped through the replication
// stream, so cursors minted against the ex-owner expire and surviving
// followers bump in lockstep; targets not at this shard's sequence
// are re-seeded in the background. Re-promoting an owner at the same
// term is idempotent.
func (m *Manager) Promote(id string, term uint64, targets []PromoteTarget) (*StatusResponse, error) {
	s := m.lookup(id)
	if s == nil {
		return nil, api.Errf(api.CodeNotFound, http.StatusNotFound,
			"no replica of %q here", id)
	}
	seq, err := m.cfg.Ing.Seq(id)
	if err != nil {
		return nil, api.Errf(api.CodeNotFound, http.StatusNotFound,
			"promote %q: %v", id, err)
	}
	s.mu.Lock()
	if s.role == api.RoleOwner {
		if term == s.term {
			s.mu.Unlock()
			return m.Status(id) // lost response, retried promote
		}
		if term < s.term {
			cur := s.term
			s.mu.Unlock()
			return nil, api.Errf(api.CodeTermMismatch, http.StatusConflict,
				"promote %q: already owner at term %d (promote term %d)", id, cur, term)
		}
		// A newer-term promote of an existing owner just adopts the
		// term and targets below.
	} else {
		if term <= s.term {
			cur := s.term
			s.mu.Unlock()
			return nil, api.Errf(api.CodeTermMismatch, http.StatusConflict,
				"promote %q: follower term %d is not older than promote term %d", id, cur, term)
		}
		if s.stale {
			owner := s.owner
			s.mu.Unlock()
			return nil, api.ErrReplicaLagging(id, owner)
		}
	}
	wasFollower := s.role == api.RoleFollower
	s.role = api.RoleOwner
	s.term = term
	s.owner = ""
	s.stale = false
	s.followers = map[string]*follower{}
	var seedAddrs []string
	for _, t := range targets {
		if t.Addr == "" || t.Addr == m.cfg.Self {
			continue
		}
		fo := &follower{addr: t.Addr, seq: t.Seq}
		if t.Seq == seq {
			fo.mode = fSynced // survivor in lockstep: stream continues
		} else {
			fo.mode = fSeeding
			seedAddrs = append(seedAddrs, t.Addr)
		}
		s.followers[t.Addr] = fo
	}
	s.mu.Unlock()
	// The won term is durable before the fence bump publishes under it:
	// a crash right here restarts as the owner it just became.
	m.persist(id)

	if wasFollower {
		// Fence: bump the epoch through the stream under the new term.
		// Synced survivors follow the bump; cursors minted against the
		// ex-owner expire instead of silently paging a diverged set.
		if _, _, err := m.cfg.Ing.PublishBump(id); err != nil {
			return nil, api.FromErr(err)
		}
	}
	for _, addr := range seedAddrs {
		go m.seed(id, addr)
	}
	return m.Status(id)
}

// DemoteRequest asks a shard to give up an owner claim that lost a
// term race (e.g. an ex-owner that restarted from disk after a
// failover promoted someone else).
type DemoteRequest struct {
	// To is the winning owner's base URL — where the tombstone points.
	To string `json:"to"`
	// Term is the winner's term; the demote only proceeds if the local
	// claim is strictly older.
	Term uint64 `json:"term"`
}

// Demote drops this shard's owner claim in favor of the owner at
// req.To, which holds a strictly newer term. The copy is flipped to a
// stale follower immediately (writes answer not_owner, reads
// replica_lagging) and torn down in the background (tombstone first,
// so it then answers moved — never not_found).
func (m *Manager) Demote(id string, req DemoteRequest) error {
	if _, ok := m.cfg.Reg.Get(id); !ok {
		return api.Errf(api.CodeNotFound, http.StatusNotFound, "unknown interface %q", id)
	}
	s := m.ensure(id)
	s.mu.Lock()
	if s.role != api.RoleOwner {
		s.mu.Unlock()
		return nil // already not an owner; nothing to give up
	}
	if s.term >= req.Term {
		cur := s.term
		s.mu.Unlock()
		return api.Errf(api.CodeTermMismatch, http.StatusConflict,
			"demote %q: local term %d is not older than %d", id, cur, req.Term)
	}
	m.fenceLocked(s, id, req.To)
	s.term = req.Term
	s.mu.Unlock()
	m.persist(id)
	return nil
}

// Unfollow drops a follower copy (the owner shrank its target set, or
// the interface was deleted). No tombstone: the copy was never
// authoritative.
func (m *Manager) Unfollow(id string) error {
	s := m.lookup(id)
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.role != api.RoleFollower {
		s.mu.Unlock()
		return api.ErrNotOwner(id, m.cfg.Self)
	}
	s.mu.Unlock()
	if m.cfg.Drop != nil {
		m.cfg.Drop(id)
	}
	m.Forget(id)
	return nil
}

// --- status.

// StatusResponse is one interface's replication status plus its
// current serving position, the tuple failover candidates are ranked
// by: (term, seq, epoch).
type StatusResponse struct {
	ID    string              `json:"id"`
	Epoch uint64              `json:"epoch"`
	Info  api.ReplicationInfo `json:"replication"`
}

// Info returns the interface's replication row for health reports,
// nil when untracked (unreplicated owner).
func (m *Manager) Info(id string) *api.ReplicationInfo {
	s := m.lookup(id)
	if s == nil {
		return nil
	}
	seq, _ := m.cfg.Ing.Seq(id) // before s.mu: lock order (see ifaceState)
	s.mu.Lock()
	defer s.mu.Unlock()
	info := &api.ReplicationInfo{
		Role: s.role, Term: s.term, Stale: s.stale, Owner: s.owner,
		Seeds: s.fullSeeds, CatchUps: s.catchUps,
	}
	if s.role == api.RoleFollower {
		info.Seq = s.seq
	} else {
		info.Seq = seq
	}
	addrs := make([]string, 0, len(s.followers))
	for addr := range s.followers {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		fo := s.followers[addr]
		info.Followers = append(info.Followers, api.ReplicaFollower{
			Addr: addr, Synced: fo.mode == fSynced, Seq: fo.seq, Error: fo.lastErr,
		})
	}
	return info
}

// Status returns the interface's status response, or not_found.
func (m *Manager) Status(id string) (*StatusResponse, error) {
	h, ok := m.cfg.Reg.Get(id)
	if !ok {
		return nil, api.Errf(api.CodeNotFound, http.StatusNotFound, "unknown interface %q", id)
	}
	info := m.Info(id)
	if info == nil {
		seq, _ := m.cfg.Ing.Seq(id)
		info = &api.ReplicationInfo{Role: api.RoleOwner, Seq: seq}
	}
	return &StatusResponse{ID: id, Epoch: h.Epoch(), Info: *info}, nil
}

// StatusAll returns every tracked interface's status, sorted by ID.
func (m *Manager) StatusAll() []StatusResponse {
	m.mu.Lock()
	ids := make([]string, 0, len(m.states))
	for id := range m.states {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Strings(ids)
	out := make([]StatusResponse, 0, len(ids))
	for _, id := range ids {
		if st, err := m.Status(id); err == nil {
			out = append(out, *st)
		}
	}
	return out
}
