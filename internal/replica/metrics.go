package replica

import (
	"repro/internal/api"
	"repro/internal/obs"
)

// Replication metric families. Everything here is lazy: the closures
// registered per interface read the live ifaceState under its mutex
// at scrape time, so the publish/apply hot paths carry no metric
// bookkeeping of their own and the exposed numbers cannot drift from
// the counters the replica smoke test already pins.
var (
	mxSeeds = obs.Default.CounterVec("pi_replica_seeds_total",
		"Full snapshot seeds shipped from this owner, per interface.", "iface")
	mxCatchups = obs.Default.CounterVec("pi_replica_catchups_total",
		"Followers re-synced from the WAL instead of a full seed, per interface.", "iface")
	mxSeq = obs.Default.GaugeVec("pi_replica_seq",
		"Replication position: last published seq on an owner, last applied seq on a follower.", "iface")
	mxLag = obs.Default.GaugeVec("pi_replica_lag",
		"Owner-side max follower lag in publications (0 on followers and unreplicated owners).", "iface")
)

// registerMetrics hooks one interface's state into the registry. Safe
// to call again after Forget/re-host: re-registering a Func replaces
// the closure, so the newest state wins.
func registerMetrics(id string, s *ifaceState) {
	mxSeeds.Func(func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.fullSeeds
	}, id)
	mxCatchups.Func(func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.catchUps
	}, id)
	mxSeq.Func(func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.role == api.RoleFollower {
			return float64(s.seq)
		}
		return float64(s.pubSeq)
	}, id)
	mxLag.Func(func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var max uint64
		for _, fo := range s.followers {
			if fo.mode == fSynced && s.pubSeq > fo.seq && s.pubSeq-fo.seq > max {
				max = s.pubSeq - fo.seq
			}
		}
		return float64(max)
	}, id)
}
