package editor

import (
	"math"
	"sort"
)

// This file implements the "standard layout algorithm" §5.3 alludes to
// via Sears' Layout Appropriateness metric [44]: given how often each
// widget is used and how often pairs of widgets are used in sequence,
// LA scores a layout by the total expected pointer travel; a better
// layout puts frequently-used and frequently-co-used widgets close
// together. Usage statistics come from the interaction graph: a
// widget's frequency is the number of diff records it expresses, and a
// pair's transition weight is the number of query pairs both widgets
// participate in.

// usageStats derives widget frequencies and pairwise transition weights
// from the interface's mapped diff records.
func (s *Session) usageStats() (freq []float64, trans [][]float64) {
	n := len(s.iface.Widgets)
	freq = make([]float64, n)
	trans = make([][]float64, n)
	for i := range trans {
		trans[i] = make([]float64, n)
	}
	type pairKey [2]int
	pairsOf := make([]map[pairKey]bool, n)
	for i, w := range s.iface.Widgets {
		freq[i] = float64(len(w.D))
		pairsOf[i] = map[pairKey]bool{}
		for _, d := range w.D {
			pairsOf[i][pairKey{d.Q1, d.Q2}] = true
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			shared := 0
			for p := range pairsOf[i] {
				if pairsOf[j][p] {
					shared++
				}
			}
			trans[i][j] = float64(shared)
			trans[j][i] = float64(shared)
		}
	}
	return freq, trans
}

// cellCenter returns grid coordinates of a cell's center for distance
// computations (rows are taller than columns are wide in the rendered
// page, weight rows double).
func cellCenter(c Cell) (x, y float64) {
	return float64(c.Col) + float64(c.ColSpan)/2, float64(c.Row) * 2
}

// LayoutAppropriateness scores the session's current layout: the
// frequency-weighted sum of distances from the origin (first widget the
// eye reaches) plus transition-weighted pairwise distances. Lower is
// better.
func (s *Session) LayoutAppropriateness() float64 {
	freq, trans := s.usageStats()
	pos := map[int]Cell{}
	for _, c := range s.cells {
		pos[c.Widget] = c
	}
	score := 0.0
	for i, f := range freq {
		c, ok := pos[i]
		if !ok || c.Hidden {
			continue
		}
		x, y := cellCenter(c)
		score += f * math.Hypot(x, y)
	}
	for i := range trans {
		for j := i + 1; j < len(trans); j++ {
			if trans[i][j] == 0 {
				continue
			}
			ci, oki := pos[i]
			cj, okj := pos[j]
			if !oki || !okj || ci.Hidden || cj.Hidden {
				continue
			}
			xi, yi := cellCenter(ci)
			xj, yj := cellCenter(cj)
			score += trans[i][j] * math.Hypot(xi-xj, yi-yj)
		}
	}
	return score
}

// OptimizeLayout reorders widgets to reduce the LA score with a greedy
// placement: the most-used widget goes first, then repeatedly the
// widget with the strongest transition weight to those already placed
// (most-used on ties). One widget per row, as the compiled page
// renders.
func (s *Session) OptimizeLayout() {
	n := len(s.iface.Widgets)
	if n == 0 {
		return
	}
	freq, trans := s.usageStats()
	placed := make([]bool, n)
	order := make([]int, 0, n)

	best := 0
	for i := 1; i < n; i++ {
		if freq[i] > freq[best] {
			best = i
		}
	}
	order = append(order, best)
	placed[best] = true
	for len(order) < n {
		bestIdx, bestScore := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if placed[i] {
				continue
			}
			affinity := 0.0
			for _, p := range order {
				affinity += trans[i][p]
			}
			score := affinity*10 + freq[i]
			if score > bestScore {
				bestIdx, bestScore = i, score
			}
		}
		order = append(order, bestIdx)
		placed[bestIdx] = true
	}

	hidden := map[int]bool{}
	for _, c := range s.cells {
		if c.Hidden {
			hidden[c.Widget] = true
		}
	}
	s.cells = s.cells[:0]
	for row, wi := range order {
		s.cells = append(s.cells, Cell{Widget: wi, Row: row, Col: 0, ColSpan: 1, Hidden: hidden[wi]})
	}
	sort.Slice(s.cells, func(i, j int) bool { return s.cells[i].Row < s.cells[j].Row })
}
