// Package editor implements the interface editor of §5.3: after
// mapping, "an editor interface renders the widgets in a grid. The user
// can optionally edit, add labels, or change the widget type for each
// widget. The editor lets users modify the layout and sizes of the
// widgets". This is the programmatic model of that editor: a layout of
// cells over the mapped widgets supporting relabeling, retyping (with
// rule checking), moving, resizing, and hiding, plus a standard
// auto-layout. Compile hands the edited interface to internal/htmlgen.
package editor

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/htmlgen"
	"repro/internal/widgets"
)

// Cell is one widget's placement in the editor grid.
type Cell struct {
	// Widget indexes into the session's interface widgets.
	Widget int
	// Row/Col are grid coordinates; ColSpan is the cell width (>= 1).
	Row, Col, ColSpan int
	// Hidden removes the widget from the compiled page without deleting
	// it from the interface.
	Hidden bool
}

// Session is an editing session over a generated interface.
type Session struct {
	iface *core.Interface
	cells []Cell
	lib   widgets.Library
}

// NewSession opens an editor over the interface with the standard
// auto-layout applied ("a standard layout algorithm could be run"):
// one widget per row, in path order, full width.
func NewSession(iface *core.Interface, lib widgets.Library) *Session {
	if lib == nil {
		lib = widgets.DefaultLibrary()
	}
	s := &Session{iface: iface, lib: lib}
	s.AutoLayout()
	return s
}

// Interface returns the underlying interface (edits to labels and types
// are applied in place; layout lives in the session).
func (s *Session) Interface() *core.Interface { return s.iface }

// Cells returns the current layout in (row, col) order.
func (s *Session) Cells() []Cell {
	out := make([]Cell, len(s.cells))
	copy(out, s.cells)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Row != out[j].Row {
			return out[i].Row < out[j].Row
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// AutoLayout resets to the standard layout: one widget per row in path
// order.
func (s *Session) AutoLayout() {
	s.cells = s.cells[:0]
	for i := range s.iface.Widgets {
		s.cells = append(s.cells, Cell{Widget: i, Row: i, Col: 0, ColSpan: 1})
	}
}

func (s *Session) cell(widget int) (*Cell, error) {
	if widget < 0 || widget >= len(s.iface.Widgets) {
		return nil, fmt.Errorf("editor: no widget %d (have %d)", widget, len(s.iface.Widgets))
	}
	for i := range s.cells {
		if s.cells[i].Widget == widget {
			return &s.cells[i], nil
		}
	}
	return nil, fmt.Errorf("editor: widget %d has no cell", widget)
}

// SetLabel renames a widget's caption.
func (s *Session) SetLabel(widget int, label string) error {
	if widget < 0 || widget >= len(s.iface.Widgets) {
		return fmt.Errorf("editor: no widget %d", widget)
	}
	s.iface.Widgets[widget].Label = label
	return nil
}

// SetType changes a widget's type, enforcing the widget rule r_WT: the
// new type must accept the widget's domain (e.g. a slider cannot take a
// string domain).
func (s *Session) SetType(widget int, typ *widgets.Type) error {
	if widget < 0 || widget >= len(s.iface.Widgets) {
		return fmt.Errorf("editor: no widget %d", widget)
	}
	w := s.iface.Widgets[widget]
	if !typ.Accepts(w.Domain) {
		return fmt.Errorf("editor: %s does not accept this widget's domain (kind %s, %d options)",
			typ.Name, w.Domain.Kind(), w.Domain.Len())
	}
	w.Type = typ
	return nil
}

// TypeByName resolves a widget type from the session's library.
func (s *Session) TypeByName(name string) (*widgets.Type, error) {
	for _, t := range s.lib {
		if t.Name == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("editor: unknown widget type %q", name)
}

// Move places a widget at a grid position.
func (s *Session) Move(widget, row, col int) error {
	c, err := s.cell(widget)
	if err != nil {
		return err
	}
	if row < 0 || col < 0 {
		return fmt.Errorf("editor: negative grid position (%d, %d)", row, col)
	}
	c.Row, c.Col = row, col
	return nil
}

// Resize sets a cell's column span.
func (s *Session) Resize(widget, colSpan int) error {
	c, err := s.cell(widget)
	if err != nil {
		return err
	}
	if colSpan < 1 {
		return fmt.Errorf("editor: column span must be >= 1")
	}
	c.ColSpan = colSpan
	return nil
}

// Hide toggles a widget's visibility in the compiled page.
func (s *Session) Hide(widget int, hidden bool) error {
	c, err := s.cell(widget)
	if err != nil {
		return err
	}
	c.Hidden = hidden
	return nil
}

// Compile produces the final web application from the edited interface:
// hidden widgets are dropped, the rest are emitted in layout order.
func (s *Session) Compile(title string) (string, error) {
	ordered := s.Cells()
	visible := &core.Interface{
		Initial: s.iface.Initial,
		Graph:   s.iface.Graph,
		Stats:   s.iface.Stats,
	}
	for _, c := range ordered {
		if c.Hidden {
			continue
		}
		visible.Widgets = append(visible.Widgets, s.iface.Widgets[c.Widget])
	}
	return htmlgen.Compile(visible, title)
}
