package editor

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/qlog"
	"repro/internal/widgets"
)

func session(t *testing.T) *Session {
	t.Helper()
	iface, err := core.Generate(qlog.FromSQL(
		"SELECT a FROM t WHERE x = 1 AND name = 'p'",
		"SELECT a FROM t WHERE x = 2 AND name = 'q'",
		"SELECT a FROM t WHERE x = 9 AND name = 'r'",
		"SELECT a FROM t WHERE x = 4 AND name = 'p'",
		"SELECT a FROM t WHERE x = 7 AND name = 'q'",
	), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(iface.Widgets) < 2 {
		t.Fatalf("expected >=2 widgets, got %d", len(iface.Widgets))
	}
	return NewSession(iface, nil)
}

func TestAutoLayout(t *testing.T) {
	s := session(t)
	cells := s.Cells()
	if len(cells) != len(s.Interface().Widgets) {
		t.Fatalf("cells = %d, widgets = %d", len(cells), len(s.Interface().Widgets))
	}
	for i, c := range cells {
		if c.Row != i || c.Col != 0 || c.ColSpan != 1 || c.Hidden {
			t.Fatalf("auto layout cell %d = %+v", i, c)
		}
	}
}

func TestSetLabelAppearsInPage(t *testing.T) {
	s := session(t)
	if err := s.SetLabel(0, "Threshold (x)"); err != nil {
		t.Fatal(err)
	}
	page, err := s.Compile("Edited")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, "Threshold (x)") {
		t.Fatal("custom label missing from compiled page")
	}
	if err := s.SetLabel(99, "x"); err == nil {
		t.Fatal("labeling a missing widget must error")
	}
}

func TestSetTypeEnforcesRules(t *testing.T) {
	s := session(t)
	// Find the slider (numeric domain) and the string widget.
	var sliderIdx, strIdx = -1, -1
	for i, w := range s.Interface().Widgets {
		if w.Domain.IsNumericRange() {
			sliderIdx = i
		} else {
			strIdx = i
		}
	}
	if sliderIdx < 0 || strIdx < 0 {
		t.Fatalf("expected numeric and string widgets")
	}
	// Numeric domain may become a textbox (numbers cast to strings).
	tb, err := s.TypeByName("textbox")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetType(sliderIdx, tb); err != nil {
		t.Fatalf("slider -> textbox should be legal: %v", err)
	}
	if s.Interface().Widgets[sliderIdx].Type != widgets.Textbox {
		t.Fatal("type not applied")
	}
	// A string domain must not become a slider.
	if err := s.SetType(strIdx, widgets.Slider); err == nil {
		t.Fatal("string domain -> slider must violate the widget rule")
	}
	if _, err := s.TypeByName("holo-deck"); err == nil {
		t.Fatal("unknown type must error")
	}
}

func TestMoveResizeHide(t *testing.T) {
	s := session(t)
	if err := s.Move(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Resize(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Hide(1, true); err != nil {
		t.Fatal(err)
	}
	cells := s.Cells()
	last := cells[len(cells)-1]
	if last.Widget != 0 || last.Row != 2 || last.Col != 1 || last.ColSpan != 2 {
		t.Fatalf("moved cell = %+v", last)
	}
	// Hidden widget disappears from the page.
	page, err := s.Compile("T")
	if err != nil {
		t.Fatal(err)
	}
	hiddenWidget := s.Interface().Widgets[1]
	if strings.Contains(page, hiddenWidget.Type.Name) &&
		strings.Count(page, "class=\"widget\"") != len(cells)-1 {
		t.Fatalf("hidden widget still rendered (%d cells)", strings.Count(page, "class=\"widget\""))
	}
	// Errors.
	if err := s.Move(0, -1, 0); err == nil {
		t.Fatal("negative position must error")
	}
	if err := s.Resize(0, 0); err == nil {
		t.Fatal("zero span must error")
	}
	if err := s.Hide(42, true); err == nil {
		t.Fatal("hiding a missing widget must error")
	}
}

func TestCompileOrderFollowsLayout(t *testing.T) {
	s := session(t)
	// Put widget 1 above widget 0.
	if err := s.Move(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Move(0, 5, 0); err != nil {
		t.Fatal(err)
	}
	page, err := s.Compile("Ordered")
	if err != nil {
		t.Fatal(err)
	}
	// data-widget attributes appear in layout order.
	first := strings.Index(page, "data-widget=\"0\"")
	second := strings.Index(page, "data-widget=\"1\"")
	if first < 0 || second < 0 || first > second {
		t.Fatalf("layout order not respected: idx0=%d idx1=%d", first, second)
	}
}

func TestLayoutAppropriateness(t *testing.T) {
	s := session(t)
	base := s.LayoutAppropriateness()
	if base <= 0 {
		t.Fatalf("LA score = %v, want positive for a non-empty layout", base)
	}
	// Pushing every widget far away must worsen (increase) the score.
	for i := range s.Interface().Widgets {
		if err := s.Move(i, 50+i, 10); err != nil {
			t.Fatal(err)
		}
	}
	if far := s.LayoutAppropriateness(); far <= base {
		t.Fatalf("distant layout should score worse: %v vs %v", far, base)
	}
}

func TestOptimizeLayoutImprovesOrWorstCaseMatches(t *testing.T) {
	s := session(t)
	// Start from a deliberately bad layout.
	for i := range s.Interface().Widgets {
		if err := s.Move(i, 30-i, 7); err != nil {
			t.Fatal(err)
		}
	}
	bad := s.LayoutAppropriateness()
	s.OptimizeLayout()
	opt := s.LayoutAppropriateness()
	if opt > bad {
		t.Fatalf("OptimizeLayout worsened LA: %v -> %v", bad, opt)
	}
	// The optimized layout is a valid one-per-row grid covering all
	// widgets exactly once.
	seen := map[int]bool{}
	for _, c := range s.Cells() {
		if seen[c.Widget] {
			t.Fatalf("widget %d placed twice", c.Widget)
		}
		seen[c.Widget] = true
	}
	if len(seen) != len(s.Interface().Widgets) {
		t.Fatalf("placed %d of %d widgets", len(seen), len(s.Interface().Widgets))
	}
}

func TestOptimizeLayoutPreservesHidden(t *testing.T) {
	s := session(t)
	if err := s.Hide(1, true); err != nil {
		t.Fatal(err)
	}
	s.OptimizeLayout()
	found := false
	for _, c := range s.Cells() {
		if c.Widget == 1 && c.Hidden {
			found = true
		}
	}
	if !found {
		t.Fatal("hidden flag lost during layout optimization")
	}
}
