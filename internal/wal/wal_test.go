package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/qlog"
)

func rowRecord(seq uint64, n int) Record {
	rows := make([][]engine.Value, n)
	for i := range rows {
		rows[i] = []engine.Value{engine.Str("AA"), engine.Num(float64(seq))}
	}
	return Record{Seq: seq, Epoch: seq + 10, Rows: []TableRows{{Table: "ontime", Rows: rows}}}
}

func collect(t *testing.T, m *Manager, id string, from uint64) []Record {
	t.Helper()
	var out []Record
	if err := m.Replay(id, from, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, Options{})
	rec := Record{
		Seq:     1,
		Epoch:   2,
		Entries: []qlog.Entry{{SQL: "SELECT 1", Client: "c1"}},
	}
	if err := m.Append("olap", rec); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := m.Append("olap", rowRecord(2, 3)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen cold, as a restart would.
	m2 := NewManager(dir, Options{})
	got := collect(t, m2, "olap", 0)
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
	if got[0].Seq != 1 || got[0].Epoch != 2 || len(got[0].Entries) != 1 || got[0].Entries[0].SQL != "SELECT 1" {
		t.Fatalf("record 1 mangled: %+v", got[0])
	}
	if got[1].Seq != 2 || len(got[1].Rows) != 1 || len(got[1].Rows[0].Rows) != 3 {
		t.Fatalf("record 2 mangled: %+v", got[1])
	}
	// Replay from a floor skips covered records.
	if got := collect(t, m2, "olap", 1); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("replay from 1 returned %+v", got)
	}
}

func TestAppendIsSeqIdempotentAndGapSafe(t *testing.T) {
	m := NewManager(t.TempDir(), Options{})
	for seq := uint64(1); seq <= 3; seq++ {
		if err := m.Append("olap", rowRecord(seq, 1)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
	// Re-appending an already-logged seq is a durable no-op (the
	// restore path re-drives acked publications through Append).
	if err := m.Append("olap", rowRecord(2, 99)); err != nil {
		t.Fatalf("idempotent append: %v", err)
	}
	if got := collect(t, m, "olap", 0); len(got) != 3 || len(got[1].Rows[0].Rows) != 1 {
		t.Fatalf("idempotent append rewrote history: %d records", len(got))
	}
	// A gap means a publication was lost between feed and log: refuse.
	if err := m.Append("olap", rowRecord(9, 1)); err == nil {
		t.Fatal("gap append succeeded; want error")
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, Options{SegmentBytes: 256}) // tiny: rotate every couple of records
	for seq := uint64(1); seq <= 20; seq++ {
		if err := m.Append("olap", rowRecord(seq, 2)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
	st, ok := m.Status("olap")
	if !ok || st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %+v", st)
	}
	if st.LastSeq != 20 || st.SyncedSeq != 20 {
		t.Fatalf("position wrong: %+v", st)
	}

	// A snapshot covering seq 15 makes most segments redundant.
	if err := m.Truncate("olap", 15); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	after, _ := m.Status("olap")
	if after.Segments >= st.Segments {
		t.Fatalf("truncate dropped nothing: %d -> %d segments", st.Segments, after.Segments)
	}
	// Records past the snapshot survive; the log still appends.
	got := collect(t, m, "olap", 15)
	if len(got) != 5 || got[0].Seq != 16 || got[4].Seq != 20 {
		t.Fatalf("post-truncate replay wrong: %d records", len(got))
	}
	if err := m.Append("olap", rowRecord(21, 1)); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}

	// Truncating everything leaves an empty, appendable log.
	if err := m.Truncate("olap", 21); err != nil {
		t.Fatalf("truncate all: %v", err)
	}
	if got := collect(t, m, "olap", 0); len(got) != 0 {
		t.Fatalf("full truncate left %d records", len(got))
	}
	if err := m.Append("olap", rowRecord(22, 1)); err != nil {
		t.Fatalf("append after full truncate: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	m2 := NewManager(dir, Options{})
	if got := collect(t, m2, "olap", 0); len(got) != 1 || got[0].Seq != 22 {
		t.Fatalf("reopen after truncate lost the tail: %+v", got)
	}
}

func TestTornTailIsTruncatedNotApplied(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, Options{})
	for seq := uint64(1); seq <= 5; seq++ {
		if err := m.Append("olap", rowRecord(seq, 2)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Corrupt the final record in place: flip bytes near the end of the
	// newest segment — the shape a crash mid-write leaves behind.
	segs, err := filepath.Glob(filepath.Join(LogDir(dir, "olap"), "*"+segSuffix))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments found: %v", err)
	}
	path := segs[len(segs)-1]
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	for i := len(raw) - 4; i < len(raw); i++ {
		raw[i] ^= 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("corrupt segment: %v", err)
	}

	m2 := NewManager(dir, Options{})
	got := collect(t, m2, "olap", 0)
	if len(got) != 4 || got[len(got)-1].Seq != 4 {
		t.Fatalf("torn tail not cut to the last good record: %d records", len(got))
	}
	st, _ := m2.Status("olap")
	if !st.Truncated {
		t.Fatalf("status does not report the truncation: %+v", st)
	}
	if st.LastSeq != 4 {
		t.Fatalf("lastSeq %d after torn-tail cut, want 4", st.LastSeq)
	}
	// The log keeps appending from the cut position.
	if err := m2.Append("olap", rowRecord(5, 1)); err != nil {
		t.Fatalf("append after cut: %v", err)
	}
	// Corruption NOT at the newest segment must fail loudly instead.
	if err := m2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	m3 := NewManager(dir, Options{SegmentBytes: 128})
	for seq := uint64(6); seq <= 12; seq++ {
		if err := m3.Append("olap", rowRecord(seq, 2)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
	if err := m3.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, _ = filepath.Glob(filepath.Join(LogDir(dir, "olap"), "*"+segSuffix))
	if len(segs) < 2 {
		t.Fatalf("need 2+ segments, got %d", len(segs))
	}
	raw, _ = os.ReadFile(segs[0])
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatalf("corrupt first segment: %v", err)
	}
	if _, err := NewManager(dir, Options{}).Log("olap"); err == nil {
		t.Fatal("mid-log corruption opened cleanly; want loud error")
	}
}

func TestGroupCommitConcurrentAppenders(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, Options{})
	l, err := m.Log("olap")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Concurrent appenders share a seq dispenser the way feeds do (one
	// lock, monotone seq) and must all return only once durable.
	var seqMu sync.Mutex
	var next uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				seqMu.Lock()
				next++
				r := rowRecord(next, 1)
				// Hold the dispenser across Append, mirroring the feed
				// lock: seqs reach the log in order.
				if err := l.Append(r); err != nil {
					seqMu.Unlock()
					t.Errorf("append %d: %v", r.Seq, err)
					return
				}
				seqMu.Unlock()
			}
		}()
	}
	wg.Wait()
	st := l.Status()
	if st.LastSeq != 200 || st.SyncedSeq != 200 {
		t.Fatalf("positions wrong after concurrent appends: %+v", st)
	}
	if st.Syncs >= st.Appends {
		t.Logf("no amortization observed (syncs %d, appends %d) — legal but unusual", st.Syncs, st.Appends)
	}
	if got := collect(t, m, "olap", 0); len(got) != 200 {
		t.Fatalf("replayed %d records, want 200", len(got))
	}
}

func TestIntervalModeSyncsInBackground(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, Options{SyncInterval: 10 * time.Millisecond, SyncBatch: 1000})
	for seq := uint64(1); seq <= 10; seq++ {
		if err := m.Append("olap", rowRecord(seq, 1)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := m.Status("olap")
		if st.SyncedSeq == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background flusher never caught up: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestResetDiscardsAndResumes(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, Options{})
	for seq := uint64(1); seq <= 4; seq++ {
		if err := m.Append("olap", rowRecord(seq, 1)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// A seed frame at seq 40 replaced local state: the old tail is
	// garbage, the next publication carries 41.
	if err := m.Reset("olap", 40); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if got := collect(t, m, "olap", 0); len(got) != 0 {
		t.Fatalf("reset left %d records", len(got))
	}
	if err := m.Append("olap", rowRecord(40, 1)); err != nil {
		t.Fatalf("append at reset seq should be a no-op: %v", err)
	}
	if err := m.Append("olap", rowRecord(41, 1)); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	m2 := NewManager(dir, Options{})
	got := collect(t, m2, "olap", 40)
	if len(got) != 1 || got[0].Seq != 41 {
		t.Fatalf("reset position did not survive reopen: %+v", got)
	}
}

func TestRemoveDeletesLog(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, Options{})
	if err := m.Append("olap", rowRecord(1, 1)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := m.Remove("olap"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := os.Stat(LogDir(dir, "olap")); !os.IsNotExist(err) {
		t.Fatalf("log dir survived remove: %v", err)
	}
	// A fresh log under the same id starts clean.
	if err := m.Append("olap", rowRecord(1, 1)); err != nil {
		t.Fatalf("append after remove: %v", err)
	}
}
