package wal

import (
	"repro/internal/obs"
)

// WAL metric families, aggregated across every open log (one log per
// interface shares the handles — the interesting signal is the disk,
// which they all share). Counters are incremented inline next to the
// existing per-log counters; the histograms time the actual syscalls,
// so the ~ns of an atomic add is noise against the fsync they sit
// beside.
var (
	mxAppendDur = obs.Default.HistogramVec("pi_wal_append_seconds",
		"Latency of one WAL append, including the group-commit wait in strict mode.",
		obs.LatencyBuckets).With()
	mxFsyncDur = obs.Default.HistogramVec("pi_wal_fsync_seconds",
		"Latency of one WAL fsync (group-commit leader, background flusher or segment seal).",
		obs.LatencyBuckets).With()
	mxBatch = obs.Default.UnitHistogramVec("pi_wal_commit_batch_size",
		"Records made durable per fsync (group-commit batch size).",
		obs.SizeBuckets).With()
	mxAppends = obs.Default.CounterVec("pi_wal_appends_total",
		"WAL records written across all logs.").With()
	mxSyncs = obs.Default.CounterVec("pi_wal_syncs_total",
		"WAL fsyncs issued across all logs.").With()
)
