// Package wal is the per-interface segmented write-ahead log under
// the durability layer: every acked publication on an interface — a
// re-mined log batch, a row append, a bare epoch bump — is recorded
// here before the ack returns, so a SIGKILL between snapshots loses
// nothing a client was told succeeded. Restore replays the records
// whose sequence numbers exceed what the newest snapshot covers,
// reconstructing the exact acked state.
//
// On disk an interface's log is a directory of segment files, each
// named by the sequence number of its first record. A segment starts
// with an 8-byte magic and holds length-prefixed records:
//
//	[4B big-endian payload length][4B CRC-32 of payload][gob payload]
//
// Each record is independently decodable (a fresh gob stream per
// record), so a torn tail — the crash landed mid-write — is detected
// by length or checksum and truncated away on open; every record
// before it is intact by construction. Corruption anywhere except the
// tail of the newest segment is a loud error, never a silent skip.
//
// Appends are group-committed: with SyncInterval zero (strict mode)
// every Append blocks until an fsync covers its record, but
// concurrent appenders share one fsync — a leader syncs whatever has
// been written and every waiter whose record it covered returns.
// With a positive SyncInterval the fsync is amortized in the
// background (bounded by SyncBatch), trading the tail of an interval
// for write latency — the ack then means "on the OS, fsync pending".
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/qlog"
	"repro/internal/store"
)

// TableRows is one table's slice of a recorded row publication. It
// mirrors the ingestion layer's publication shape without importing
// it (the ingestion layer imports this package).
type TableRows struct {
	Table string
	Rows  [][]engine.Value
}

// Record is one acked publication: the per-interface monotone
// sequence number, the interface epoch after the publish, and the
// payload — log entries (re-mine batch), table rows (row append),
// rowid-keyed mutations (UPDATE/DELETE publish), or none of them (a
// bare epoch bump / promotion fence). Muts gob-decodes empty on
// records written before DML existed, so old logs keep replaying.
type Record struct {
	Seq     uint64
	Epoch   uint64
	Entries []qlog.Entry
	Rows    []TableRows
	Muts    []store.TableMutation
}

// Options configure a Manager.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size. Default 4 MiB.
	SegmentBytes int64
	// SyncInterval selects the commit mode: zero means strict (every
	// Append waits for a group-committed fsync), positive means the
	// fsync runs in the background at this cadence.
	SyncInterval time.Duration
	// SyncBatch, in interval mode, forces an early fsync once this many
	// records are waiting on one. Default 64.
	SyncBatch int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncBatch <= 0 {
		o.SyncBatch = 64
	}
	return o
}

// Status is one interface log's health row.
type Status struct {
	// Segments is the number of segment files on disk.
	Segments int `json:"segments"`
	// Bytes is the total size of those segments.
	Bytes int64 `json:"bytes"`
	// LastSeq is the newest recorded sequence number.
	LastSeq uint64 `json:"lastSeq"`
	// SyncedSeq is the newest sequence number an fsync covers; in
	// interval mode LastSeq-SyncedSeq is the window an OS crash could
	// lose.
	SyncedSeq uint64 `json:"syncedSeq"`
	// Appends and Syncs count records written and fsyncs issued since
	// open — their ratio is the group-commit amortization.
	Appends uint64 `json:"appends"`
	Syncs   uint64 `json:"syncs"`
	// Truncated reports that open found and cut a torn tail.
	Truncated bool `json:"truncated,omitempty"`
}

var segMagic = []byte("PIWAL001")

const (
	recHeaderLen  = 8       // 4B length + 4B CRC
	maxRecordSize = 1 << 30 // decode guard against a corrupt length
	segSuffix     = ".seg"
	dirSuffix     = ".wal"
)

// LogDir returns the segment directory for an interface inside dir.
func LogDir(dir, id string) string { return filepath.Join(dir, id+dirSuffix) }

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%020d%s", firstSeq, segSuffix)
}

// Manager owns the per-interface logs under one data directory. It is
// safe for concurrent use; per-interface appends serialize on the
// log's lock (the callers already hold the ingestion feed lock, so in
// practice one interface's appends arrive in order).
type Manager struct {
	dir  string
	opts Options

	mu     sync.Mutex
	logs   map[string]*Log
	closed bool
}

// NewManager returns a manager writing logs under dir.
func NewManager(dir string, opts Options) *Manager {
	return &Manager{dir: dir, opts: opts.withDefaults(), logs: map[string]*Log{}}
}

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.dir }

// Log opens (or creates) the interface's log, replaying nothing. The
// first open after a crash truncates a torn tail.
func (m *Manager) Log(id string) (*Log, error) {
	if !store.ValidID(id) {
		return nil, fmt.Errorf("wal: invalid interface id %q", id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("wal: manager is closed")
	}
	if l, ok := m.logs[id]; ok {
		return l, nil
	}
	l, err := openLog(LogDir(m.dir, id), m.opts)
	if err != nil {
		return nil, err
	}
	m.logs[id] = l
	return l, nil
}

// Append records one publication for the interface (see Log.Append).
func (m *Manager) Append(id string, r Record) error {
	l, err := m.Log(id)
	if err != nil {
		return err
	}
	return l.Append(r)
}

// Truncate drops the interface's segments that a snapshot at seq has
// made redundant (see Log.Truncate). A log that was never opened or
// written is a no-op.
func (m *Manager) Truncate(id string, seq uint64) error {
	l, err := m.Log(id)
	if err != nil {
		return err
	}
	return l.Truncate(seq)
}

// Replay streams the interface's records with Seq > fromSeq, in
// order. A missing log replays nothing.
func (m *Manager) Replay(id string, fromSeq uint64, fn func(Record) error) error {
	l, err := m.Log(id)
	if err != nil {
		return err
	}
	return l.Replay(fromSeq, fn)
}

// Reset discards every record of the interface's log and resumes the
// sequence at seq — the adopt path (a seed or migration frame
// replaced the local state wholesale, so the old tail no longer
// applies to it).
func (m *Manager) Reset(id string, seq uint64) error {
	l, err := m.Log(id)
	if err != nil {
		return err
	}
	return l.Reset(seq)
}

// Remove deletes the interface's log directory entirely (the
// interface was deleted or dropped).
func (m *Manager) Remove(id string) error {
	if !store.ValidID(id) {
		return fmt.Errorf("wal: invalid interface id %q", id)
	}
	m.mu.Lock()
	l, ok := m.logs[id]
	delete(m.logs, id)
	m.mu.Unlock()
	if ok {
		l.Close()
	}
	if err := os.RemoveAll(LogDir(m.dir, id)); err != nil {
		return fmt.Errorf("wal: remove log %q: %w", id, err)
	}
	return nil
}

// Status reports the interface log's health, false if it was never
// opened in this process.
func (m *Manager) Status(id string) (Status, bool) {
	m.mu.Lock()
	l, ok := m.logs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return l.Status(), true
}

// Close flushes and closes every open log.
func (m *Manager) Close() error {
	m.mu.Lock()
	m.closed = true
	logs := make([]*Log, 0, len(m.logs))
	for _, l := range m.logs {
		logs = append(logs, l)
	}
	m.logs = map[string]*Log{}
	m.mu.Unlock()
	var first error
	for _, l := range logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// segInfo is one sealed (read-only) segment.
type segInfo struct {
	path     string
	firstSeq uint64
	lastSeq  uint64 // 0 when the segment holds no records
	size     int64
}

// Log is one interface's segmented record log.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	cond      *sync.Cond // broadcast when syncedSeq advances
	sealed    []segInfo  // read-only predecessors of the active segment
	active    *os.File
	activeSeg segInfo
	lastSeq   uint64 // newest appended seq across the whole log
	syncedSeq uint64 // newest seq an fsync covers
	syncing   bool   // a group-commit leader is mid-fsync
	appends   uint64
	syncs     uint64
	truncated bool // open cut a torn tail
	closed    bool

	stop chan struct{} // interval mode: flusher shutdown
	kick chan struct{} // interval mode: SyncBatch overflow signal
}

// openLog opens the segment directory, scanning every segment to
// recover the sequence position and truncating a torn tail on the
// newest one.
func openLog(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create log dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s has a malformed name", filepath.Join(dir, name))
		}
		segs = append(segs, segInfo{path: filepath.Join(dir, name), firstSeq: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })

	l := &Log{dir: dir, opts: opts}
	l.cond = sync.NewCond(&l.mu)
	for i := range segs {
		tail := i == len(segs)-1
		last, size, cut, err := scanSegment(segs[i].path, tail)
		if err != nil {
			return nil, err
		}
		segs[i].lastSeq = last
		segs[i].size = size
		if cut {
			l.truncated = true
		}
		if last > l.lastSeq {
			l.lastSeq = last
		}
	}
	l.syncedSeq = l.lastSeq // everything on disk at open is as durable as it gets

	// The newest segment (or a fresh one) becomes the active appender.
	if len(segs) > 0 {
		l.sealed = segs[:len(segs)-1]
		l.activeSeg = segs[len(segs)-1]
		f, err := os.OpenFile(l.activeSeg.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open active segment: %w", err)
		}
		l.active = f
	} else if err := l.startSegmentLocked(1); err != nil {
		return nil, err
	}

	if opts.SyncInterval > 0 {
		l.stop = make(chan struct{})
		l.kick = make(chan struct{}, 1)
		go l.flushLoop()
	}
	return l, nil
}

// scanSegment walks one segment's records, returning the last seq and
// the byte offset after the last good record. A torn or corrupt
// record at the tail is truncated away when tail is set (the crash
// wrote it, nobody was acked on it — see Append's sync discipline);
// anywhere else it is an error.
func scanSegment(path string, tail bool) (lastSeq uint64, good int64, cut bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: read segment: %w", err)
	}
	bad := func(off int64, reason string) (uint64, int64, bool, error) {
		if !tail {
			return 0, 0, false, fmt.Errorf("wal: segment %s is corrupt at offset %d (%s) and is not the newest segment; refusing to serve past acked state", path, off, reason)
		}
		if err := truncateSegment(path, off); err != nil {
			return 0, 0, false, err
		}
		return lastSeq, off, true, nil
	}
	if len(raw) < len(segMagic) {
		return bad(0, "short magic")
	}
	if !bytes.Equal(raw[:len(segMagic)], segMagic) {
		return 0, 0, false, fmt.Errorf("wal: %s is not a WAL segment (bad magic)", path)
	}
	off := int64(len(segMagic))
	for off < int64(len(raw)) {
		rest := raw[off:]
		if len(rest) < recHeaderLen {
			return bad(off, "short record header")
		}
		size := binary.BigEndian.Uint32(rest[0:4])
		sum := binary.BigEndian.Uint32(rest[4:8])
		if size == 0 || size > maxRecordSize {
			return bad(off, "implausible record length")
		}
		if int64(len(rest)) < recHeaderLen+int64(size) {
			return bad(off, "short record payload")
		}
		payload := rest[recHeaderLen : recHeaderLen+int64(size)]
		if crc32.ChecksumIEEE(payload) != sum {
			return bad(off, "record failed checksum")
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return bad(off, "record failed decode")
		}
		lastSeq = rec.Seq
		off += recHeaderLen + int64(size)
	}
	return lastSeq, off, false, nil
}

// truncateSegment cuts a segment at off (a magic-only file when off
// predates the header) and fsyncs the result.
func truncateSegment(path string, off int64) error {
	if off < int64(len(segMagic)) {
		// Not even the magic survived: rewrite the header so the file is
		// a valid empty segment again.
		if err := os.WriteFile(path, segMagic, 0o644); err != nil {
			return fmt.Errorf("wal: rewrite torn segment %s: %w", path, err)
		}
	} else if err := os.Truncate(path, off); err != nil {
		return fmt.Errorf("wal: truncate torn segment %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: sync torn segment %s: %w", path, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync torn segment %s: %w", path, err)
	}
	return nil
}

// startSegmentLocked creates and syncs a fresh active segment named
// by the seq its first record will carry. Caller holds l.mu.
func (l *Log) startSegmentLocked(firstSeq uint64) error {
	path := filepath.Join(l.dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: sync segment header: %w", err)
	}
	l.active = f
	l.activeSeg = segInfo{path: path, firstSeq: firstSeq, size: int64(len(segMagic))}
	syncDir(l.dir)
	return nil
}

// Append records one publication and — in strict mode — blocks until
// an fsync covers it. Records must arrive in sequence order; a record
// at or below the last recorded seq is acknowledged without a write
// (idempotent: the restore path re-drives acked publications through
// the same code path that logged them), and a gap is an error (a
// publication was lost between the feed and the log, so acking it
// would lie).
func (l *Log) Append(r Record) error {
	frame, err := encodeRecord(r)
	if err != nil {
		return err
	}
	start := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log is closed")
	}
	if r.Seq <= l.lastSeq {
		l.mu.Unlock()
		return nil
	}
	if l.lastSeq != 0 && r.Seq != l.lastSeq+1 {
		l.mu.Unlock()
		return fmt.Errorf("wal: append seq %d does not follow logged seq %d", r.Seq, l.lastSeq)
	}
	// Rotate a full active segment before the write, sealing it durably.
	if l.activeSeg.size >= l.opts.SegmentBytes && l.activeSeg.lastSeq > 0 {
		if err := l.rotateLocked(r.Seq); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	if _, err := l.active.Write(frame); err != nil {
		// The write may have landed partially; the tail scan on the next
		// open truncates it. Nothing was acked on it.
		l.mu.Unlock()
		return fmt.Errorf("wal: append seq %d: %w", r.Seq, err)
	}
	l.activeSeg.size += int64(len(frame))
	if l.activeSeg.lastSeq == 0 && l.activeSeg.firstSeq != r.Seq {
		// First record of a pre-created (or reset) segment: the file name
		// pins the first seq, keep the in-memory view consistent.
		l.activeSeg.firstSeq = r.Seq
	}
	l.activeSeg.lastSeq = r.Seq
	l.lastSeq = r.Seq
	l.appends++
	mxAppends.Inc()

	if l.opts.SyncInterval > 0 {
		// Interval mode: the ack means "written to the OS"; the flusher
		// (or a SyncBatch overflow) makes it durable shortly.
		pending := l.lastSeq - l.syncedSeq
		l.mu.Unlock()
		mxAppendDur.Observe(time.Since(start))
		if pending >= uint64(l.opts.SyncBatch) {
			select {
			case l.kick <- struct{}{}:
			default:
			}
		}
		return nil
	}
	err = l.waitSyncedLocked(r.Seq)
	l.mu.Unlock()
	mxAppendDur.Observe(time.Since(start))
	return err
}

// waitSyncedLocked blocks until an fsync covers seq, electing this
// goroutine as the group-commit leader when none is mid-flight.
// Caller holds l.mu; returns with it held.
func (l *Log) waitSyncedLocked(seq uint64) error {
	for l.syncedSeq < seq {
		if l.closed {
			return fmt.Errorf("wal: log closed before seq %d was synced", seq)
		}
		if l.syncing {
			// A leader's fsync is in flight; it may or may not cover seq —
			// wait for its broadcast and re-check.
			l.cond.Wait()
			continue
		}
		l.syncing = true
		covered := l.lastSeq // everything written so far rides this fsync
		batch := covered - l.syncedSeq
		f := l.active
		l.mu.Unlock()
		fstart := time.Now()
		err := f.Sync()
		mxFsyncDur.Observe(time.Since(fstart))
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.cond.Broadcast()
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.syncs++
		mxSyncs.Inc()
		mxBatch.ObserveN(int64(batch))
		if covered > l.syncedSeq {
			l.syncedSeq = covered
		}
		l.cond.Broadcast()
	}
	return nil
}

// excludeSyncLocked waits out any in-flight fsync (group-commit
// leader or background flusher) so the caller can safely close or
// replace the active file. Caller holds l.mu.
func (l *Log) excludeSyncLocked() {
	for l.syncing {
		l.cond.Wait()
	}
}

// rotateLocked seals the active segment (fsync + close, so sealed
// segments are always fully durable) and starts a fresh one whose
// first record will be nextSeq. Caller holds l.mu.
func (l *Log) rotateLocked(nextSeq uint64) error {
	l.excludeSyncLocked()
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	if l.activeSeg.lastSeq > l.syncedSeq {
		l.syncedSeq = l.activeSeg.lastSeq
		l.cond.Broadcast()
	}
	l.syncs++
	mxSyncs.Inc()
	l.sealed = append(l.sealed, l.activeSeg)
	return l.startSegmentLocked(nextSeq)
}

// flushLoop is the interval-mode background fsync: every
// SyncInterval, or sooner when SyncBatch records pile up, it syncs
// the active segment and advances syncedSeq.
func (l *Log) flushLoop() {
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
		case <-l.kick:
		}
		l.mu.Lock()
		if l.closed || l.syncing || l.syncedSeq >= l.lastSeq {
			l.mu.Unlock()
			continue
		}
		l.syncing = true
		covered := l.lastSeq
		batch := covered - l.syncedSeq
		f := l.active
		l.mu.Unlock()
		fstart := time.Now()
		err := f.Sync()
		mxFsyncDur.Observe(time.Since(fstart))
		l.mu.Lock()
		l.syncing = false
		if err == nil {
			l.syncs++
			mxSyncs.Inc()
			mxBatch.ObserveN(int64(batch))
			if covered > l.syncedSeq {
				l.syncedSeq = covered
			}
		}
		// An fsync error retries on the next tick; strict durability was
		// not promised in interval mode.
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// Sync forces an fsync covering everything appended so far — the
// shutdown path in interval mode.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.waitSyncedLocked(l.lastSeq)
}

// Truncate deletes segments whose records a snapshot at seq has made
// redundant: sealed segments entirely at or below seq go away, and an
// active segment entirely covered is replaced by a fresh empty one.
// The log's sequence position is unaffected — appends continue from
// lastSeq.
func (l *Log) Truncate(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	var keep []segInfo
	for _, s := range l.sealed {
		if s.lastSeq <= seq {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: drop segment: %w", err)
			}
			continue
		}
		keep = append(keep, s)
	}
	l.sealed = keep
	if l.activeSeg.lastSeq > 0 && l.activeSeg.lastSeq <= seq {
		l.excludeSyncLocked()
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
		old := l.activeSeg.path
		if err := l.startSegmentLocked(l.lastSeq + 1); err != nil {
			return err
		}
		if err := os.Remove(old); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: drop segment: %w", err)
		}
	}
	syncDir(l.dir)
	return nil
}

// Reset discards every record and resumes the sequence at seq (the
// next append must carry seq+1) — the adopt path after a seed or
// migration frame replaced local state wholesale.
func (l *Log) Reset(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	for _, s := range l.sealed {
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: drop segment: %w", err)
		}
	}
	l.sealed = nil
	l.excludeSyncLocked()
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := os.Remove(l.activeSeg.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.lastSeq = seq
	l.syncedSeq = seq
	if err := l.startSegmentLocked(seq + 1); err != nil {
		return err
	}
	return nil
}

// Replay streams every record with Seq > fromSeq, in order, to fn.
// The scan reads the segment files directly (including the active
// one), so it must not race appends — restore runs before serving.
func (l *Log) Replay(fromSeq uint64, fn func(Record) error) error {
	l.mu.Lock()
	segs := append(append([]segInfo{}, l.sealed...), l.activeSeg)
	l.mu.Unlock()
	for _, s := range segs {
		raw, err := os.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		if len(raw) < len(segMagic) || !bytes.Equal(raw[:len(segMagic)], segMagic) {
			return fmt.Errorf("wal: replay: %s is not a WAL segment", s.path)
		}
		off := int64(len(segMagic))
		for off < int64(len(raw)) {
			rec, n, err := decodeRecord(raw[off:])
			if err != nil {
				return fmt.Errorf("wal: replay %s at offset %d: %w", s.path, off, err)
			}
			off += n
			if rec.Seq <= fromSeq {
				continue
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Status reports the log's position and group-commit counters.
func (l *Log) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Status{
		Segments:  len(l.sealed) + 1,
		Bytes:     l.activeSeg.size,
		LastSeq:   l.lastSeq,
		SyncedSeq: l.syncedSeq,
		Appends:   l.appends,
		Syncs:     l.syncs,
		Truncated: l.truncated,
	}
	for _, s := range l.sealed {
		st.Bytes += s.size
	}
	return st
}

// Close syncs outstanding records and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	syncErr := l.waitSyncedLocked(l.lastSeq)
	l.excludeSyncLocked()
	l.closed = true
	l.cond.Broadcast()
	f := l.active
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return syncErr
}

// encodeRecord frames one record: length, checksum, gob payload. A
// fresh encoder per record keeps records independently decodable.
func encodeRecord(r Record) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&r); err != nil {
		return nil, fmt.Errorf("wal: encode record seq %d: %w", r.Seq, err)
	}
	frame := make([]byte, recHeaderLen+payload.Len())
	binary.BigEndian.PutUint32(frame[0:4], uint32(payload.Len()))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	copy(frame[recHeaderLen:], payload.Bytes())
	return frame, nil
}

// decodeRecord decodes one framed record from the head of raw,
// returning the frame's total length.
func decodeRecord(raw []byte) (Record, int64, error) {
	var rec Record
	if len(raw) < recHeaderLen {
		return rec, 0, io.ErrUnexpectedEOF
	}
	size := binary.BigEndian.Uint32(raw[0:4])
	sum := binary.BigEndian.Uint32(raw[4:8])
	if size == 0 || size > maxRecordSize || len(raw) < recHeaderLen+int(size) {
		return rec, 0, io.ErrUnexpectedEOF
	}
	payload := raw[recHeaderLen : recHeaderLen+int(size)]
	if crc32.ChecksumIEEE(payload) != sum {
		return rec, 0, fmt.Errorf("record failed checksum")
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return rec, 0, fmt.Errorf("record failed decode: %w", err)
	}
	return rec, recHeaderLen + int64(size), nil
}

// syncDir fsyncs a directory so renames/creates/removes inside it are
// durable; failure is not fatal (the files themselves are synced).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
