// Package sessions implements the log-preprocessing direction the paper
// proposes in §3.3: heterogeneous logs mix queries from many analyses,
// and "preprocessing the query log by leveraging query meta-data ...,
// modeling semantic distances between queries to cluster similar
// queries, and removing anomalous queries are all promising
// approaches". This package provides all three:
//
//   - PartitionByClient: split on the session/client ids DBMS logs carry;
//   - Cluster: distance-based clustering of queries using the
//     Zhang-Shasha tree edit distance (internal/treediff), which
//     separates interleaved analyses even without client metadata;
//   - RemoveAnomalies: drop queries far from every cluster.
//
// Generating one precision interface per cluster recovers the
// single-analysis recall that a mixed-log interface loses (see
// BenchmarkClusteredRecall and the sessions tests).
package sessions

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/qlog"
	"repro/internal/treediff"
)

// Cluster is one group of queries believed to belong to one analysis.
type Cluster struct {
	// Medoid is the index (into the input log) of the central query.
	Medoid int
	// Members are input-log indices in log order.
	Members []int
}

// Log materializes the cluster as a query log (order preserved).
func (c *Cluster) Log(src *qlog.Log) *qlog.Log {
	out := &qlog.Log{}
	for _, i := range c.Members {
		e := src.Entries[i]
		out.Append(e.SQL, e.Client)
	}
	return out
}

// Options tune the clustering.
type Options struct {
	// Threshold is the maximum normalized tree edit distance between a
	// query and its cluster medoid (0 < t <= 1). Smaller values produce
	// more, purer clusters. Default 0.35 — the fixed clause-slot
	// skeleton makes even unrelated SELECTs share ~half their nodes, so
	// the useful range is below ~0.45.
	Threshold float64
	// MaxClusters caps the number of clusters (0 = unlimited). Queries
	// beyond the cap join their nearest cluster regardless of distance.
	MaxClusters int
}

// DefaultOptions returns the clustering defaults.
func DefaultOptions() Options { return Options{Threshold: 0.35} }

// ClusterLog groups the log's queries by normalized tree edit distance
// using a single-pass leader algorithm with medoid refinement: each
// query joins the nearest existing cluster if within the threshold,
// otherwise founds a new one; afterwards each cluster's medoid is
// recomputed and membership is reassigned once. The procedure is
// deterministic and O(n·k) distance computations.
func ClusterLog(log *qlog.Log, opts Options) ([]Cluster, error) {
	if opts.Threshold <= 0 {
		opts.Threshold = DefaultOptions().Threshold
	}
	queries, err := log.Parse()
	if err != nil {
		return nil, err
	}
	leaders := leaderPass(queries, opts)
	// Medoid refinement + one reassignment pass.
	refineMedoids(queries, leaders)
	reassign(queries, leaders, opts)
	refineMedoids(queries, leaders)
	// Drop empties, keep deterministic order by first member.
	var out []Cluster
	for _, c := range leaders {
		if len(c.Members) > 0 {
			out = append(out, *c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Members[0] < out[j].Members[0] })
	return out, nil
}

func leaderPass(queries []*ast.Node, opts Options) []*Cluster {
	var clusters []*Cluster
	for i, q := range queries {
		best, bestDist := -1, opts.Threshold
		for ci, c := range clusters {
			d := treediff.NormalizedDistance(q, queries[c.Medoid])
			if d <= bestDist {
				best, bestDist = ci, d
			}
		}
		if best < 0 {
			if opts.MaxClusters > 0 && len(clusters) >= opts.MaxClusters {
				// Nearest cluster regardless of threshold.
				nearest, nd := 0, 2.0
				for ci, c := range clusters {
					d := treediff.NormalizedDistance(q, queries[c.Medoid])
					if d < nd {
						nearest, nd = ci, d
					}
				}
				clusters[nearest].Members = append(clusters[nearest].Members, i)
				continue
			}
			clusters = append(clusters, &Cluster{Medoid: i, Members: []int{i}})
			continue
		}
		clusters[best].Members = append(clusters[best].Members, i)
	}
	return clusters
}

// refineMedoids sets each cluster's medoid to the member minimizing the
// summed distance to a sample of other members (full medoid computation
// is O(m²); a deterministic sample bounds the work on large clusters).
func refineMedoids(queries []*ast.Node, clusters []*Cluster) {
	const sampleCap = 24
	for _, c := range clusters {
		if len(c.Members) <= 2 {
			continue
		}
		sample := c.Members
		if len(sample) > sampleCap {
			stride := len(sample) / sampleCap
			picked := make([]int, 0, sampleCap)
			for i := 0; i < len(sample) && len(picked) < sampleCap; i += stride {
				picked = append(picked, sample[i])
			}
			sample = picked
		}
		best, bestSum := c.Medoid, -1.0
		for _, cand := range sample {
			sum := 0.0
			for _, other := range sample {
				if other != cand {
					sum += treediff.NormalizedDistance(queries[cand], queries[other])
				}
			}
			if bestSum < 0 || sum < bestSum {
				best, bestSum = cand, sum
			}
		}
		c.Medoid = best
	}
}

func reassign(queries []*ast.Node, clusters []*Cluster, opts Options) {
	for _, c := range clusters {
		c.Members = c.Members[:0]
	}
	for i, q := range queries {
		best, bestDist := 0, 2.0
		for ci, c := range clusters {
			d := treediff.NormalizedDistance(q, queries[c.Medoid])
			if d < bestDist {
				best, bestDist = ci, d
			}
		}
		clusters[best].Members = append(clusters[best].Members, i)
	}
	_ = opts
}

// RemoveAnomalies drops anomalous queries — the "removing anomalous
// queries" step of §3.3, which the paper warns should be applied with
// care. Two kinds of anomalies are removed: queries farther than
// threshold from their cluster medoid, and entire clusters smaller than
// minClusterSize (isolated one-off queries found their own singleton
// clusters, so a per-medoid distance test alone never flags them). It
// returns the kept log and the removed entries.
func RemoveAnomalies(log *qlog.Log, clusters []Cluster, threshold float64, minClusterSize int) (*qlog.Log, []qlog.Entry, error) {
	queries, err := log.Parse()
	if err != nil {
		return nil, nil, err
	}
	keepSet := make(map[int]bool, len(queries))
	for _, c := range clusters {
		if len(c.Members) < minClusterSize {
			continue
		}
		medoid := queries[c.Medoid]
		for _, i := range c.Members {
			if treediff.NormalizedDistance(queries[i], medoid) <= threshold {
				keepSet[i] = true
			}
		}
	}
	kept := &qlog.Log{}
	var removed []qlog.Entry
	for i, e := range log.Entries {
		if keepSet[i] {
			kept.Append(e.SQL, e.Client)
		} else {
			removed = append(removed, e)
		}
	}
	return kept, removed, nil
}

// Describe renders a short cluster summary for logs/debugging.
func Describe(log *qlog.Log, clusters []Cluster) string {
	s := fmt.Sprintf("%d clusters over %d queries\n", len(clusters), log.Len())
	for i, c := range clusters {
		s += fmt.Sprintf("  cluster %d: %d queries, medoid %q\n",
			i, len(c.Members), truncate(log.Entries[c.Medoid].SQL, 60))
	}
	return s
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
