package sessions

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interaction"
	"repro/internal/qlog"
	"repro/internal/workload"
)

func mixedLog() *qlog.Log {
	return qlog.Interleave(
		workload.SDSSClientV(workload.Lookup, 1, 10, 40),
		workload.SDSSClientV(workload.Radial, 2, 20, 40),
		workload.OLAPLog(40, 30),
	)
}

func TestClusterSeparatesAnalyses(t *testing.T) {
	log := mixedLog()
	clusters, err := ClusterLog(log, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) < 2 || len(clusters) > 8 {
		t.Fatalf("clusters = %d, want a handful (got %s)", len(clusters), Describe(log, clusters))
	}
	// Purity: every cluster should be dominated by one client.
	for i, c := range clusters {
		counts := map[string]int{}
		for _, m := range c.Members {
			counts[log.Entries[m].Client]++
		}
		max, total := 0, 0
		for _, n := range counts {
			total += n
			if n > max {
				max = n
			}
		}
		if purity := float64(max) / float64(total); purity < 0.9 {
			t.Errorf("cluster %d purity %.2f (%v)", i, purity, counts)
		}
	}
	// Coverage: every query assigned exactly once.
	seen := map[int]bool{}
	for _, c := range clusters {
		for _, m := range c.Members {
			if seen[m] {
				t.Fatalf("query %d assigned twice", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != log.Len() {
		t.Fatalf("assigned %d of %d queries", len(seen), log.Len())
	}
}

func TestClusterDeterministic(t *testing.T) {
	log := mixedLog()
	a, err := ClusterLog(log, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterLog(log, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic cluster count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Medoid != b[i].Medoid || len(a[i].Members) != len(b[i].Members) {
			t.Fatalf("cluster %d differs between runs", i)
		}
	}
}

func TestMaxClustersCap(t *testing.T) {
	log := mixedLog()
	clusters, err := ClusterLog(log, Options{Threshold: 0.1, MaxClusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) > 2 {
		t.Fatalf("cap ignored: %d clusters", len(clusters))
	}
}

// TestClusteredInterfacesRecoverRecall is the payoff experiment for the
// §3.3 preprocessing proposal: a single interface over a mixed log
// generalizes poorly, but clustering first and generating one interface
// per cluster recovers per-analysis recall.
func TestClusteredInterfacesRecoverRecall(t *testing.T) {
	full := qlog.Interleave(
		workload.SDSSClientV(workload.Lookup, 1, 10, 160),
		workload.SDSSClientV(workload.Filter, 3, 20, 160),
	)
	train := full.Slice(0, 120)
	holdout := full.Slice(240, 320) // later queries from both clients
	holdQ, err := holdout.Parse()
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Miner: interaction.Options{WindowSize: 0, LCAPrune: true}}

	clusters, err := ClusterLog(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) < 2 {
		t.Fatalf("expected the two analyses to separate, got %d cluster(s)", len(clusters))
	}
	var ifaces []*core.Interface
	for _, c := range clusters {
		iface, err := core.Generate(c.Log(train), opts)
		if err != nil {
			t.Fatal(err)
		}
		ifaces = append(ifaces, iface)
	}
	// A holdout query counts when ANY per-cluster interface expresses it
	// (the user picks the interface for their analysis).
	covered := 0
	for _, q := range holdQ {
		for _, iface := range ifaces {
			if iface.CanExpress(q) {
				covered++
				break
			}
		}
	}
	recall := float64(covered) / float64(len(holdQ))
	if recall < 0.9 {
		t.Fatalf("clustered recall = %.2f, want >= 0.9", recall)
	}
}

func TestRemoveAnomalies(t *testing.T) {
	log := workload.SDSSClientV(workload.Lookup, 1, 10, 60)
	// Inject two out-of-analysis queries.
	log.Append("SELECT (CASE x WHEN 1 THEN 'a' ELSE 'b' END), FLOOR(y/7) FROM weird GROUP BY z HAVING COUNT(*) > 3", "noise")
	log.Append("SELECT a, b, c, d, e FROM other1, other2, other3 WHERE q LIKE '%odd%'", "noise")
	clusters, err := ClusterLog(log, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	kept, removed, err := RemoveAnomalies(log, clusters, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Len()+len(removed) != log.Len() {
		t.Fatalf("kept %d + removed %d != %d", kept.Len(), len(removed), log.Len())
	}
	// Both noise queries founded singleton clusters; the min-cluster-
	// size rule must flag them.
	if len(removed) != 2 {
		t.Fatalf("removed %d queries, want the 2 noise queries: %v", len(removed), removed)
	}
	for _, e := range removed {
		if e.Client != "noise" {
			t.Errorf("legitimate query removed: %q", e.SQL)
		}
	}
	for _, e := range kept.Entries {
		if e.Client == "noise" {
			t.Errorf("noise query kept: %q", e.SQL)
		}
	}
}

func TestDescribe(t *testing.T) {
	log := mixedLog()
	clusters, err := ClusterLog(log, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := Describe(log, clusters)
	if !strings.Contains(out, "clusters over") || !strings.Contains(out, "medoid") {
		t.Fatalf("describe output: %s", out)
	}
}
