// Package mapper maps interaction-graph edges to interface widgets — the
// graph-contraction heuristic of §5. Initialization partitions the diffs
// table by path and instantiates the cheapest accepting widget type per
// partition (Algorithms 1–2); Merging then iteratively eliminates the
// redundancy between ancestor widgets and their descendants
// (Algorithm 3) until the interface cost stops decreasing.
package mapper

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/interaction"
	"repro/internal/widgets"
)

// MappedWidget is a widget together with the diff records that
// initialized it (w.D ⊆ diffs in the paper's notation); the mapper needs
// w.D to compute the incident-vertex sets during merging.
type MappedWidget struct {
	*widgets.Widget
	D []interaction.DiffRecord
}

// rebuild re-instantiates the widget for the current w.D via pickWidget
// and returns nil when w.D is empty (the widget disappears).
func rebuild(lib widgets.Library, path ast.Path, d []interaction.DiffRecord) *MappedWidget {
	if len(d) == 0 {
		return nil
	}
	dom := widgets.NewDomain()
	for _, rec := range d {
		dom.Add(rec.Left)
		dom.Add(rec.Right)
	}
	w := lib.Pick(path, dom)
	if w == nil {
		return nil
	}
	return &MappedWidget{Widget: w, D: d}
}

// Map runs the full heuristic over an interaction graph and returns the
// selected widgets in deterministic (path) order.
func Map(g *interaction.Graph, lib widgets.Library) []*MappedWidget {
	ws := initialize(g, lib)
	ws = merge(ws, lib)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Path.Compare(ws[j].Path) < 0 })
	return ws
}

// MapWithoutMerge runs initialization only (Algorithm 1), skipping the
// merging phase — the ablation baseline: every (path, kind) partition
// keeps its own widget, so the interface is maximally redundant.
func MapWithoutMerge(g *interaction.Graph, lib widgets.Library) []*MappedWidget {
	ws := initialize(g, lib)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Path.Compare(ws[j].Path) < 0 })
	return ws
}

// initialize implements Algorithm 1 with the finer partitioning the
// paper mentions as an alternative (§5.1): diffs are partitioned by
// (path, primitive kind) rather than path alone. Kind-pure partitions
// keep numeric transformations extrapolatable by sliders even when a
// heterogeneous log also swaps, say, a column reference in and out at
// the same path (which would otherwise poison the domain's kind).
func initialize(g *interaction.Graph, lib widgets.Library) []*MappedWidget {
	s := NewState(lib)
	s.AddDiffs(g.Diffs())
	return s.initialWidgets()
}

// State is the mapper's retained partition state for incremental
// re-mapping: the (path, kind)-partitioned diffs table plus the widget
// instantiated for each partition. Batch mapping partitions the whole
// diffs table, instantiates every partition's widget and merges; a
// State keeps the partitions across appends so only partitions touched
// by new diff records are re-instantiated, leaving the per-append cost
// proportional to the new records (merging still runs over the full
// widget set — it is the cheap phase). Widgets() output is identical to
// a batch Map over the same accumulated records.
//
// A State is not safe for concurrent use; it belongs to one miner.
type State struct {
	lib   widgets.Library
	parts map[string][]interaction.DiffRecord
	built map[string]*MappedWidget // pre-merge widget per partition
}

// NewState returns an empty mapping state over the widget library.
func NewState(lib widgets.Library) *State {
	if lib == nil {
		lib = widgets.DefaultLibrary()
	}
	return &State{
		lib:   lib,
		parts: map[string][]interaction.DiffRecord{},
		built: map[string]*MappedWidget{},
	}
}

// AddDiffs appends new diff records to the partition state and
// re-instantiates only the touched partitions. Returns how many
// partitions were (re)built.
func (s *State) AddDiffs(ds []interaction.DiffRecord) int {
	dirty := map[string]bool{}
	for _, d := range ds {
		key := d.Path.String() + "|" + d.Kind().String()
		s.parts[key] = append(s.parts[key], d)
		dirty[key] = true
	}
	for key := range dirty {
		recs := s.parts[key]
		if w := rebuild(s.lib, recs[0].Path, recs); w != nil {
			s.built[key] = w
		} else {
			delete(s.built, key)
		}
	}
	return len(dirty)
}

// NumDiffs returns the number of accumulated diff records.
func (s *State) NumDiffs() int {
	n := 0
	for _, recs := range s.parts {
		n += len(recs)
	}
	return n
}

// initialWidgets assembles the pre-merge widget list in sorted
// partition-key order — exactly what batch initialize produces.
func (s *State) initialWidgets() []*MappedWidget {
	keys := make([]string, 0, len(s.built))
	for key := range s.built {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	ws := make([]*MappedWidget, 0, len(keys))
	for _, key := range keys {
		ws = append(ws, s.built[key])
	}
	return ws
}

// Widgets runs the merge phase over the current partitions and returns
// the interface's widgets in path order, like Map. The cached per-
// partition widgets are not mutated (merge builds replacements), so
// Widgets may be called after every append.
func (s *State) Widgets() []*MappedWidget {
	ws := merge(s.initialWidgets(), s.lib)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Path.Compare(ws[j].Path) < 0 })
	return ws
}

// merge implements the iterative application of Algorithm 3: for every
// ancestor widget and the set of its descendant widgets, reassign the
// overlapping diff records to whichever side yields the larger cost
// reduction, and repeat until the total interface cost stops improving.
func merge(ws []*MappedWidget, lib widgets.Library) []*MappedWidget {
	for {
		improved := false
		// Contract bottom-up: consider the deepest ancestor widgets
		// first so each merge step compares one chain level (wa against
		// its immediate-ish descendants) instead of the root against
		// everything. Ties in depth break deterministically by path.
		sort.Slice(ws, func(i, j int) bool {
			if len(ws[i].Path) != len(ws[j].Path) {
				return len(ws[i].Path) > len(ws[j].Path)
			}
			return ws[i].Path.Compare(ws[j].Path) < 0
		})
		for ai := 0; ai < len(ws); ai++ {
			wa := ws[ai]
			if wa == nil {
				continue
			}
			var desc []*MappedWidget
			for di := 0; di < len(ws); di++ {
				if di == ai || ws[di] == nil {
					continue
				}
				if wa.Path.IsStrictPrefixOf(ws[di].Path) {
					desc = append(desc, ws[di])
				}
			}
			if len(desc) == 0 {
				continue
			}
			next, changed := mergeStep(wa, desc, lib)
			if !changed {
				continue
			}
			improved = true
			// Replace wa and desc in ws with the merge result.
			old := map[*MappedWidget]bool{wa: true}
			for _, d := range desc {
				old[d] = true
			}
			var out []*MappedWidget
			for _, w := range ws {
				if w != nil && !old[w] {
					out = append(out, w)
				}
			}
			out = append(out, next...)
			ws = out
			break // restart scan over the updated widget set
		}
		if !improved {
			break
		}
	}
	// Drop nils defensively and return.
	var out []*MappedWidget
	for _, w := range ws {
		if w != nil {
			out = append(out, w)
		}
	}
	return out
}

// mergeStep is Algorithm 3 for one (ancestor, descendants) pair. It
// returns the replacement widgets and whether anything changed (i.e.
// whether removing the overlap from one side reduced total cost).
//
// The overlap ("the edges that connect the same pairs of vertices", the
// orange region of the paper's venn diagram) is computed at the level
// of query pairs: a diff record is overlapping when the other side also
// has a record for the same (q1, q2) edge. The paper's vertex-set
// intersection is a coarser proxy that degenerates under all-pairs
// mining, where root-level ancestors touch every vertex and the
// intersection becomes the whole graph.
func mergeStep(wa *MappedWidget, wd []*MappedWidget, lib widgets.Library) ([]*MappedWidget, bool) {
	pairsA := map[[2]int]bool{}
	for _, d := range wa.D {
		pairsA[[2]int{d.Q1, d.Q2}] = true
	}
	pairsD := map[[2]int]bool{}
	for _, w := range wd {
		for _, d := range w.D {
			pairsD[[2]int{d.Q1, d.Q2}] = true
		}
	}
	shared := map[[2]int]bool{}
	for p := range pairsA {
		if pairsD[p] {
			shared[p] = true
		}
	}
	if len(shared) == 0 {
		return nil, false
	}

	// Lines 7-8: the overlapping diff records.
	inInter := func(d interaction.DiffRecord) bool { return shared[[2]int{d.Q1, d.Q2}] }
	ga := filter(wa.D, inInter)
	if len(ga) == 0 {
		return nil, false
	}
	anyGd := false
	for _, w := range wd {
		if len(filter(w.D, inInter)) > 0 {
			anyGd = true
			break
		}
	}
	if !anyGd {
		return nil, false
	}

	// Lines 11-17: cost reduction of each option.
	costOf := func(w *MappedWidget) float64 {
		if w == nil {
			return 0
		}
		return w.Cost()
	}
	var sd float64
	descWithout := make([]*MappedWidget, len(wd))
	for i, w := range wd {
		remaining := filter(w.D, func(d interaction.DiffRecord) bool { return !inInter(d) })
		descWithout[i] = rebuild(lib, w.Path, remaining)
		sd += costOf(w) - costOf(descWithout[i])
	}
	ancRemaining := filter(wa.D, func(d interaction.DiffRecord) bool { return !inInter(d) })
	ancWithout := rebuild(lib, wa.Path, ancRemaining)
	sa := costOf(wa) - costOf(ancWithout)

	// Lines 19-25: keep the option with the larger reduction. Nothing
	// changes when neither option reduces cost.
	if sa <= 0 && sd <= 0 {
		return nil, false
	}
	var out []*MappedWidget
	if sa > sd {
		if ancWithout != nil {
			out = append(out, ancWithout)
		}
		out = append(out, wd...)
	} else {
		out = append(out, wa)
		for _, w := range descWithout {
			if w != nil {
				out = append(out, w)
			}
		}
	}
	return out, true
}

func incidentVertices(ds []interaction.DiffRecord) map[int]bool {
	out := map[int]bool{}
	for _, d := range ds {
		out[d.Q1] = true
		out[d.Q2] = true
	}
	return out
}

func filter(ds []interaction.DiffRecord, keep func(interaction.DiffRecord) bool) []interaction.DiffRecord {
	var out []interaction.DiffRecord
	for _, d := range ds {
		if keep(d) {
			out = append(out, d)
		}
	}
	return out
}

// TotalCost is the interface cost C_I = Σ c(w) (§4.4).
func TotalCost(ws []*MappedWidget) float64 {
	c := 0.0
	for _, w := range ws {
		c += w.Cost()
	}
	return c
}
