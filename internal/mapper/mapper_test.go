package mapper

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/interaction"
	"repro/internal/sqlparser"
	"repro/internal/widgets"
)

func mine(t *testing.T, opts interaction.Options, sqls ...string) *interaction.Graph {
	t.Helper()
	qs := make([]*ast.Node, len(sqls))
	for i, s := range sqls {
		qs[i] = sqlparser.MustParse(s)
	}
	g, _ := interaction.Mine(qs, opts)
	return g
}

// TestInitializePartitionsByPath: Algorithm 1 creates one widget per
// distinct diff path.
func TestInitializePartitionsByPath(t *testing.T) {
	g := mine(t, interaction.Options{WindowSize: 0},
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2")
	ws := initialize(g, widgets.DefaultLibrary())
	paths := map[string]bool{}
	for _, w := range ws {
		if paths[w.Path.String()] {
			t.Fatalf("duplicate widget path %s", w.Path)
		}
		paths[w.Path.String()] = true
	}
	// One leaf partition (the literal) + ancestors 2/0, 2, root.
	if len(ws) != 4 {
		t.Fatalf("initial widgets = %d, want 4 (leaf + 3 ancestors)", len(ws))
	}
}

// TestMergeEliminatesRedundancy: after merging, the example collapses to
// the single cheapest widget (the slider on the literal).
func TestMergeEliminatesRedundancy(t *testing.T) {
	lib := widgets.DefaultLibrary()
	g := mine(t, interaction.Options{WindowSize: 0},
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2",
		"SELECT a FROM t WHERE x = 9")
	init := initialize(g, lib)
	merged := merge(init, lib)
	if len(merged) != 1 {
		for _, w := range merged {
			t.Logf("widget %s@%s n=%d", w.Type.Name, w.Path, w.Domain.Len())
		}
		t.Fatalf("merged widgets = %d, want 1", len(merged))
	}
	if merged[0].Type.Name != "slider" {
		t.Fatalf("surviving widget = %s, want slider", merged[0].Type.Name)
	}
	if TotalCost(merged) >= TotalCost(init) {
		t.Fatalf("merge did not reduce cost: %v -> %v", TotalCost(init), TotalCost(merged))
	}
}

// TestMergeNeverIncreasesCost: the fixpoint invariant of §5.2.
func TestMergeNeverIncreasesCost(t *testing.T) {
	lib := widgets.DefaultLibrary()
	logs := [][]string{
		{"SELECT avg(a)", "SELECT count(b)", "SELECT count(c)"},
		{"SELECT a FROM t", "SELECT b FROM u", "SELECT c FROM v WHERE x = 1"},
		{"SELECT * FROM T",
			"SELECT * FROM (SELECT a FROM T WHERE b > 10)",
			"SELECT * FROM (SELECT a FROM T WHERE b > 20)"},
	}
	for _, sqls := range logs {
		g := mine(t, interaction.Options{WindowSize: 0}, sqls...)
		init := initialize(g, lib)
		merged := merge(init, lib)
		if TotalCost(merged) > TotalCost(init)+1e-9 {
			t.Errorf("merge increased cost for %q: %v -> %v",
				sqls[0], TotalCost(init), TotalCost(merged))
		}
	}
}

// TestFigure4Example reproduces Example 5.1/Figure 4: three queries
// where q1-q2 differ in one subtree and q2-q3 in another. The merged
// interface keeps the two fine-grained widgets (wb, wc) and drops the
// whole-query widget wa, because the pair expresses any combination at
// lower total cost than three whole-query options... or keeps wa when
// it is cheaper. Either way every query stays expressible; here the
// leaf widgets win because both are cheap toggles/sliders.
func TestFigure4Example(t *testing.T) {
	lib := widgets.DefaultLibrary()
	g := mine(t, interaction.Options{WindowSize: 2, LCAPrune: true},
		"SELECT a FROM t WHERE x = 1",
		"SELECT b FROM t WHERE x = 1",
		"SELECT b FROM t WHERE x = 5")
	ws := Map(g, lib)
	if len(ws) != 2 {
		for _, w := range ws {
			t.Logf("widget %s@%s n=%d", w.Type.Name, w.Path, w.Domain.Len())
		}
		t.Fatalf("widgets = %d, want 2 (column toggle + value slider)", len(ws))
	}
}

func TestMapDeterminism(t *testing.T) {
	lib := widgets.DefaultLibrary()
	sqls := []string{
		"SELECT a, b FROM t WHERE x = 1 AND y = 'p'",
		"SELECT a, c FROM t WHERE x = 2 AND y = 'q'",
		"SELECT a, b FROM t WHERE x = 3 AND y = 'r'",
		"SELECT a, c FROM t WHERE x = 9 AND y = 'p'",
	}
	sig := func() string {
		g := mine(t, interaction.Options{WindowSize: 0}, sqls...)
		s := ""
		for _, w := range Map(g, lib) {
			s += w.Type.Name + "@" + w.Path.String() + ";"
		}
		return s
	}
	first := sig()
	for i := 0; i < 5; i++ {
		if got := sig(); got != first {
			t.Fatalf("non-deterministic mapping: %q vs %q", first, got)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := mine(t, interaction.Options{WindowSize: 2}, "SELECT a FROM t")
	if ws := Map(g, widgets.DefaultLibrary()); len(ws) != 0 {
		t.Fatalf("no diffs should map to no widgets, got %d", len(ws))
	}
}
