package treediff

import (
	"repro/internal/ast"
)

// Comparer memoizes Compare/CompareLCA results across calls. Query-log
// mining compares the same AST pairs repeatedly — an incremental miner
// revisits window pairs on every fallback re-mine, and real logs repeat
// whole statements — so a small identity-keyed memo turns the dominant
// O(|q|²) tree matching into a map lookup for every repeated pair.
//
// Keys are node pointer pairs, not structural hashes: the miner keeps
// parsed ASTs alive and immutable for the lifetime of a log, so pointer
// identity is both collision-free and cheap. Structurally equal but
// distinct pointers simply miss, which is only a performance question.
//
// A Comparer is NOT safe for concurrent use; each miner owns one.
type Comparer struct {
	cap  int
	lca  map[[2]*ast.Node]Result
	full map[[2]*ast.Node]Result
}

// DefaultComparerSize bounds each memo (LCA and full) of a Comparer
// built with NewComparer(0).
const DefaultComparerSize = 1 << 16

// NewComparer returns a memoizing comparer holding at most capacity
// entries per mode (<= 0 selects DefaultComparerSize).
func NewComparer(capacity int) *Comparer {
	if capacity <= 0 {
		capacity = DefaultComparerSize
	}
	return &Comparer{
		cap:  capacity,
		lca:  make(map[[2]*ast.Node]Result),
		full: make(map[[2]*ast.Node]Result),
	}
}

// Compare is the memoized treediff.Compare.
func (c *Comparer) Compare(left, right *ast.Node) Result {
	return c.memo(c.full, left, right, Compare)
}

// CompareLCA is the memoized treediff.CompareLCA.
func (c *Comparer) CompareLCA(left, right *ast.Node) Result {
	return c.memo(c.lca, left, right, CompareLCA)
}

func (c *Comparer) memo(m map[[2]*ast.Node]Result, left, right *ast.Node, f func(a, b *ast.Node) Result) Result {
	key := [2]*ast.Node{left, right}
	if r, ok := m[key]; ok {
		return r
	}
	r := f(left, right)
	if len(m) >= c.cap {
		// Full: drop the whole generation. Simpler than LRU bookkeeping
		// and amortized-fine for a memo whose entries are all
		// recomputable; mining working sets rarely reach the cap.
		clear(m)
	}
	m[key] = r
	return r
}
