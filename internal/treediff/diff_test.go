package treediff

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/sqlparser"
)

// TestTable1 reproduces the paper's Table 1: the diffs between the two
// Figure 3 queries. The leaf diffs are the projection column change
// (str) and the predicate constant change (str); the ancestors include
// the ProjClause, the BiExpr and the whole-tree transformation.
func TestTable1(t *testing.T) {
	q1 := sqlparser.MustParse("SELECT cty, sales FROM T WHERE cty = 'USA'")
	q2 := sqlparser.MustParse("SELECT cty, costs FROM T WHERE cty = 'EUR'")
	res := Compare(q1, q2)

	if len(res.Leaves) != 2 {
		t.Fatalf("leaf diffs = %d, want 2: %v", len(res.Leaves), res.Leaves)
	}
	byPath := map[string]Diff{}
	for _, d := range res.Leaves {
		byPath[d.Path.String()] = d
	}
	// d1: the second project clause's column expression, sales -> costs, str.
	d1, ok := byPath["0/1/0"]
	if !ok {
		t.Fatalf("missing diff at 0/1/0; got %v", byPath)
	}
	if d1.Left.Value() != "sales" || d1.Right.Value() != "costs" || d1.Kind() != ast.KindString {
		t.Fatalf("d1 wrong: %s", d1)
	}
	// d2: the WHERE literal USA -> EUR, str. (The paper's path 2/0/0/1
	// counts the Where wrapper implicitly; in our layout the predicate
	// is Where's only child, so the literal sits at 2/0/1.)
	d2, ok := byPath["2/0/1"]
	if !ok {
		t.Fatalf("missing diff at 2/0/1; got %v", byPath)
	}
	if d2.Left.Value() != "USA" || d2.Right.Value() != "EUR" || d2.Kind() != ast.KindString {
		t.Fatalf("d2 wrong: %s", d2)
	}

	// Ancestors include d3 (the ProjClause at 0/1), d4 (the predicate
	// subtree) and the root.
	anc := map[string]bool{}
	for _, d := range res.Ancestors {
		anc[d.Path.String()] = true
		if d.Kind() != ast.KindTree {
			t.Errorf("ancestor diff %s should have tree kind", d)
		}
	}
	for _, want := range []string{"0/1", "0", "2/0", "2", "/"} {
		if !anc[want] {
			t.Errorf("missing ancestor transformation at %s (have %v)", want, anc)
		}
	}
}

// TestLCAPruning checks §6.2: only leaf-ds and least common ancestors
// of pairs of leaf-ds survive.
func TestLCAPruning(t *testing.T) {
	q1 := sqlparser.MustParse("SELECT cty, sales FROM T WHERE cty = 'USA'")
	q2 := sqlparser.MustParse("SELECT cty, costs FROM T WHERE cty = 'EUR'")
	res := CompareLCA(q1, q2)
	if len(res.Leaves) != 2 {
		t.Fatalf("leaves = %d", len(res.Leaves))
	}
	// The only LCA of the two leaf diffs (0/1/0 and 2/0/1) is the root.
	if len(res.Ancestors) != 1 || res.Ancestors[0].Path.String() != "/" {
		t.Fatalf("LCA ancestors = %v, want only root", res.Ancestors)
	}
}

func TestLCASingleLeaf(t *testing.T) {
	q1 := sqlparser.MustParse("SELECT a FROM t WHERE x = 1")
	q2 := sqlparser.MustParse("SELECT a FROM t WHERE x = 2")
	res := CompareLCA(q1, q2)
	if len(res.Leaves) != 1 {
		t.Fatalf("leaves = %v", res.Leaves)
	}
	if len(res.Ancestors) != 0 {
		t.Fatalf("a single leaf diff has no LCA ancestors, got %v", res.Ancestors)
	}
	if res.Leaves[0].Kind() != ast.KindNumber {
		t.Fatalf("numeric literal change should be num kind: %s", res.Leaves[0])
	}
}

func TestIdenticalTreesNoDiffs(t *testing.T) {
	q := sqlparser.MustParse("SELECT a, b FROM t WHERE x = 1 GROUP BY a")
	res := Compare(q, q.Clone())
	if len(res.Leaves) != 0 || len(res.Ancestors) != 0 {
		t.Fatalf("identical trees produced diffs: %v %v", res.Leaves, res.Ancestors)
	}
}

func TestAdditionAndDeletion(t *testing.T) {
	q1 := sqlparser.MustParse("SELECT a FROM t")
	q2 := sqlparser.MustParse("SELECT a, b FROM t")
	res := Compare(q1, q2)
	if len(res.Leaves) != 1 {
		t.Fatalf("leaves = %v", res.Leaves)
	}
	d := res.Leaves[0]
	if d.Left != nil || d.Right == nil {
		t.Fatalf("expected pure insertion, got %s", d)
	}
	if d.Kind() != ast.KindTree {
		t.Fatal("insertions are tree kind")
	}
	// And the reverse is a deletion.
	rev := Compare(q2, q1)
	if len(rev.Leaves) != 1 || rev.Leaves[0].Right != nil || rev.Leaves[0].Left == nil {
		t.Fatalf("expected deletion, got %v", rev.Leaves)
	}
}

// TestTopAddition reproduces the Listing 6 shape: adding TOP is a diff
// at the Limit slot; changing the TOP value is a numeric leaf diff below
// it, so the two widgets of Figure 5d fall out.
func TestTopAddition(t *testing.T) {
	q1 := sqlparser.MustParse("SELECT g.objID FROM Galaxy g")
	q2 := sqlparser.MustParse("SELECT TOP 1 g.objID FROM Galaxy g")
	q3 := sqlparser.MustParse("SELECT TOP 10 g.objID FROM Galaxy g")

	r12 := Compare(q1, q2)
	if len(r12.Leaves) != 1 || r12.Leaves[0].Path.String() != "6" {
		t.Fatalf("q1->q2 leaves = %v, want single diff at Limit slot 6", r12.Leaves)
	}
	if r12.Leaves[0].Kind() != ast.KindTree {
		t.Fatal("TOP addition should be tree kind (it is a toggle, not a slider)")
	}

	r23 := Compare(q2, q3)
	if len(r23.Leaves) != 1 || r23.Leaves[0].Path.String() != "6/0" {
		t.Fatalf("q2->q3 leaves = %v, want diff at 6/0", r23.Leaves)
	}
	if r23.Leaves[0].Kind() != ast.KindNumber {
		t.Fatal("TOP value change should be num kind (slider)")
	}
}

// TestApplyReconstructs checks the functional interpretation d(q) = q':
// applying all leaf diffs of Compare(q1, q2) to q1 yields q2, and the
// inverses recover q1. Applying deeper paths first keeps earlier
// replacements from invalidating later paths.
func TestApplyReconstructs(t *testing.T) {
	pairs := [][2]string{
		{"SELECT cty, sales FROM T WHERE cty = 'USA'",
			"SELECT cty, costs FROM T WHERE cty = 'EUR'"},
		{"SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState",
			"SELECT DestState FROM ontime WHERE Month = 8 GROUP BY DestState"},
		{"SELECT * FROM T",
			"SELECT * FROM (SELECT a FROM T WHERE b > 10)"},
		{"SELECT avg(a)", "SELECT count(b)"},
	}
	for _, pr := range pairs {
		q1 := sqlparser.MustParse(pr[0])
		q2 := sqlparser.MustParse(pr[1])
		res := Compare(q1, q2)
		got := applyAll(q1, res.Leaves)
		if !ast.Equal(got, q2) {
			t.Errorf("apply(%q -> %q) produced %s, want %s", pr[0], pr[1], got, q2)
		}
		// Root ancestor alone also transforms q1 to q2.
		if len(res.Ancestors) > 0 {
			root := res.Ancestors[len(res.Ancestors)-1]
			for _, a := range res.Ancestors {
				if len(a.Path) == 0 {
					root = a
				}
			}
			if !ast.Equal(root.Apply(q1), q2) {
				t.Errorf("root ancestor transformation failed for %q", pr[0])
			}
		}
	}
}

// applyAll delegates to ApplyAll (kept as a local alias for readability).
func applyAll(q *ast.Node, ds []Diff) *ast.Node { return ApplyAll(q, ds) }

// TestDiffLocality: diffs never report paths outside the left tree
// (replacements and deletions index existing nodes; insertions index at
// most one past the last child).
func TestDiffLocality(t *testing.T) {
	q1 := sqlparser.MustParse("SELECT a, b, c FROM t WHERE x = 1 AND y = 2")
	q2 := sqlparser.MustParse("SELECT a, c FROM t WHERE x = 3 AND z = 2 GROUP BY c")
	res := Compare(q1, q2)
	for _, d := range append(res.Leaves, res.Ancestors...) {
		if d.Left != nil {
			if got := q1.At(d.Path); got == nil {
				t.Errorf("diff %s: left path not found in q1", d)
			}
		}
	}
}

// Property: for randomly generated query pairs, applying the leaf diffs
// reconstructs the target in both directions, and identical inputs
// yield no diffs.
func TestCompareReconstructionProperty(t *testing.T) {
	gen := func(r *rand.Rand) *ast.Node {
		cols := []string{"a", "b", "c", "d"}
		tabs := []string{"t", "u"}
		sql := "SELECT " + cols[r.Intn(4)]
		if r.Intn(2) == 0 {
			sql += ", " + cols[r.Intn(4)]
		}
		sql += " FROM " + tabs[r.Intn(2)]
		if r.Intn(2) == 0 {
			sql += " WHERE x = " + string(rune('0'+r.Intn(10)))
		}
		if r.Intn(3) == 0 {
			sql += " GROUP BY " + cols[r.Intn(4)]
		}
		return sqlparser.MustParse(sql)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		a, b := gen(r), gen(r)
		if got := ApplyAll(a, Compare(a, b).Leaves); !ast.Equal(got, b) {
			t.Fatalf("forward reconstruction failed:\na=%s\nb=%s\ngot=%s", a, b, got)
		}
		if got := ApplyAll(b, Compare(b, a).Leaves); !ast.Equal(got, a) {
			t.Fatalf("backward reconstruction failed:\na=%s\nb=%s\ngot=%s", a, b, got)
		}
		if ds := Compare(a, a.Clone()).Leaves; len(ds) != 0 {
			t.Fatalf("self-compare produced diffs: %v", ds)
		}
	}
}

// Property (testing/quick): applying the leaf diffs between two
// single-literal queries always reconstructs the right-hand query.
func TestApplyProperty(t *testing.T) {
	f := func(v1, v2 uint16) bool {
		q1 := sqlparser.MustParse("SELECT a FROM t WHERE x = " + itoa(int(v1)))
		q2 := sqlparser.MustParse("SELECT a FROM t WHERE x = " + itoa(int(v2)))
		res := Compare(q1, q2)
		return ast.Equal(applyAll(q1, res.Leaves), q2)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
