package treediff

import (
	"repro/internal/ast"
)

// This file implements the Zhang-Shasha ordered tree edit distance
// (the classic algorithm surveyed in Bille [2], which the paper cites
// for its tree matching). The distance is the substrate for the query
// clustering preprocessing the paper proposes in §3.3 ("modeling
// semantic distances between queries ... to cluster similar queries"):
// see internal/sessions.
//
// Unit costs: 1 per inserted node, 1 per deleted node, 1 per relabeled
// node (label = type + attributes), 0 for matches.

// EditDistance returns the ordered tree edit distance between two ASTs.
// A nil tree has distance Size(other) to any tree (all inserts).
func EditDistance(a, b *ast.Node) int {
	if a == nil {
		return b.Size()
	}
	if b == nil {
		return a.Size()
	}
	ta := newTedTree(a)
	tb := newTedTree(b)
	return zhangShasha(ta, tb)
}

// NormalizedDistance maps the edit distance into [0, 1] by dividing by
// the larger tree size — 0 for identical trees, 1 when nothing aligns.
func NormalizedDistance(a, b *ast.Node) float64 {
	sa, sb := a.Size(), b.Size()
	max := sa
	if sb > max {
		max = sb
	}
	if max == 0 {
		return 0
	}
	return float64(EditDistance(a, b)) / float64(max)
}

// tedTree is the post-order representation Zhang-Shasha works on.
type tedTree struct {
	nodes []*ast.Node // post-order
	lmld  []int       // leftmost leaf descendant index per node (post-order)
	keys  []int       // key roots, ascending
}

func newTedTree(root *ast.Node) *tedTree {
	t := &tedTree{}
	lmCache := map[*ast.Node]int{}
	var walk func(n *ast.Node)
	walk = func(n *ast.Node) {
		for _, c := range n.Children {
			walk(c)
		}
		idx := len(t.nodes)
		t.nodes = append(t.nodes, n)
		if len(n.Children) > 0 {
			lmCache[n] = lmCache[n.Children[0]]
		} else {
			lmCache[n] = idx
		}
		t.lmld = append(t.lmld, lmCache[n])
	}
	walk(root)
	// Key roots: nodes with no left sibling on the path — i.e. for each
	// distinct leftmost-leaf value, the highest (last in post-order)
	// node having it.
	seen := map[int]int{}
	for i := range t.nodes {
		seen[t.lmld[i]] = i
	}
	for _, i := range seen {
		t.keys = append(t.keys, i)
	}
	sortInts(t.keys)
	return t
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func relabelCost(a, b *ast.Node) int {
	if ast.LabelEqual(a, b) {
		return 0
	}
	return 1
}

// zhangShasha computes the tree edit distance between two post-order
// trees using the standard keyroot decomposition.
func zhangShasha(t1, t2 *tedTree) int {
	n, m := len(t1.nodes), len(t2.nodes)
	td := make([][]int, n)
	for i := range td {
		td[i] = make([]int, m)
	}
	for _, i := range t1.keys {
		for _, j := range t2.keys {
			treeDist(t1, t2, i, j, td)
		}
	}
	return td[n-1][m-1]
}

// treeDist fills td[i][j] for the key-root pair (i, j) via the forest
// distance recurrence.
func treeDist(t1, t2 *tedTree, i, j int, td [][]int) {
	li, lj := t1.lmld[i], t2.lmld[j]
	// Forest distance matrix over subforest prefixes; index 0 = empty.
	rows := i - li + 2
	cols := j - lj + 2
	fd := make([][]int, rows)
	for r := range fd {
		fd[r] = make([]int, cols)
	}
	for r := 1; r < rows; r++ {
		fd[r][0] = fd[r-1][0] + 1 // delete
	}
	for c := 1; c < cols; c++ {
		fd[0][c] = fd[0][c-1] + 1 // insert
	}
	for r := 1; r < rows; r++ {
		for c := 1; c < cols; c++ {
			di := li + r - 1 // node index in t1
			dj := lj + c - 1 // node index in t2
			if t1.lmld[di] == li && t2.lmld[dj] == lj {
				// Both prefixes are whole trees rooted at di/dj.
				d := min3(
					fd[r-1][c]+1,
					fd[r][c-1]+1,
					fd[r-1][c-1]+relabelCost(t1.nodes[di], t2.nodes[dj]),
				)
				fd[r][c] = d
				td[di][dj] = d
			} else {
				fd[r][c] = min3(
					fd[r-1][c]+1,
					fd[r][c-1]+1,
					fd[t1.lmld[di]-li][t2.lmld[dj]-lj]+td[di][dj],
				)
			}
		}
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
