// Package treediff computes subtree transformations between pairs of
// query ASTs (§4.2). It implements an ordered tree matching that
// preserves ancestor and left-to-right sibling relationships: equal
// subtrees are anchored with an LCS pass per child list, unmatched
// regions are paired in order, and recursion descends only through
// label-equal pairs. The minimal differing subtree pairs are "leaf
// diffs"; every ancestor pair on the way to a leaf diff is also a valid
// transformation, and LCA pruning (§6.2) keeps only the ancestors that
// can express more than a single leaf diff.
package treediff

import (
	"fmt"

	"repro/internal/ast"
)

// Diff is one subtree transformation d = (p, t1, t2): replacing the
// subtree at path p (t1, as found in the left query) with t2 yields the
// corresponding region of the right query. Additions and deletions set
// Left or Right to nil, matching the paper's null convention.
type Diff struct {
	Path  ast.Path
	Left  *ast.Node
	Right *ast.Node
}

// Kind returns the primitive kind of the transformation as reported in
// Table 1: "num" when both sides are numeric terminals, "str" when both
// sides are string-castable terminals, "tree" otherwise (including
// additions and deletions).
func (d Diff) Kind() ast.Kind {
	if d.Left == nil || d.Right == nil {
		return ast.KindTree
	}
	kl, kr := ast.KindOf(d.Left), ast.KindOf(d.Right)
	if kl == ast.KindTree || kr == ast.KindTree {
		return ast.KindTree
	}
	if kl == ast.KindNumber && kr == ast.KindNumber {
		return ast.KindNumber
	}
	return ast.KindString
}

// String renders the diff like a row of the paper's Table 1.
func (d Diff) String() string {
	l, r := "null", "null"
	if d.Left != nil {
		l = d.Left.String()
	}
	if d.Right != nil {
		r = d.Right.String()
	}
	return fmt.Sprintf("d{p:%s %s -> %s (%s)}", d.Path, l, r, d.Kind())
}

// Apply interprets d as a function d(q) = q' (§4.2): a replacement
// swaps the subtree at d.Path for d.Right; an insertion (Left == nil)
// inserts d.Right at the path's child index; a deletion (Right == nil)
// removes the child at the path. Returns nil when the path is invalid
// for q.
func (d Diff) Apply(q *ast.Node) *ast.Node {
	switch {
	case d.Left == nil:
		return q.InsertAt(d.Path, d.Right)
	case d.Right == nil:
		return q.DeleteAt(d.Path)
	default:
		return q.ReplaceAt(d.Path, d.Right)
	}
}

// ApplyAll applies a set of leaf diffs produced by Compare(q, ·) to q.
// Diffs are applied in descending path order (and reverse sequence
// order on ties) so that index-shifting insertions and deletions do not
// invalidate the remaining paths. Returns nil if any application fails.
func ApplyAll(q *ast.Node, ds []Diff) *ast.Node {
	idx := make([]int, len(ds))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by (path desc, sequence desc); n is tiny.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			cmp := ds[a].Path.Compare(ds[b].Path)
			if cmp > 0 || (cmp == 0 && a > b) {
				break
			}
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	out := q
	for _, i := range idx {
		out = ds[i].Apply(out)
		if out == nil {
			return nil
		}
	}
	return out
}

// Inverse returns the reverse transformation d⁻¹ with the sides swapped.
func (d Diff) Inverse() Diff { return Diff{Path: d.Path, Left: d.Right, Right: d.Left} }

// Result holds the transformations between one ordered pair of ASTs.
type Result struct {
	// Leaves are the minimal differing subtree pairs.
	Leaves []Diff
	// Ancestors are the non-leaf transformations: the subtree pairs on
	// every path from the root to a leaf diff (the root pair — replacing
	// the whole query — is always among them when any diff exists).
	Ancestors []Diff
}

// All returns leaves followed by ancestors.
func (r Result) All() []Diff {
	out := make([]Diff, 0, len(r.Leaves)+len(r.Ancestors))
	out = append(out, r.Leaves...)
	out = append(out, r.Ancestors...)
	return out
}

// Compare diffs the ordered pair (left, right) and returns the leaf
// transformations plus all ancestor transformations.
func Compare(left, right *ast.Node) Result {
	c := &comparer{}
	c.rec(left, right, ast.Path{})
	return Result{Leaves: c.leaves, Ancestors: c.ancestors}
}

// CompareLCA is Compare with least-common-ancestor pruning applied: the
// ancestor list keeps only subtree pairs that are the LCA of at least
// two leaf diffs (§6.2). Leaf diffs are always kept.
func CompareLCA(left, right *ast.Node) Result {
	c := &comparer{}
	c.rec(left, right, ast.Path{})
	return Result{Leaves: c.leaves, Ancestors: pruneLCA(c.leaves, c.ancestors)}
}

// pruneLCA keeps the ancestors whose path is the longest common prefix
// of at least one pair of distinct leaf-diff paths.
func pruneLCA(leaves, ancestors []Diff) []Diff {
	if len(leaves) < 2 {
		return nil
	}
	keep := make(map[string]bool)
	for i := range leaves {
		for j := i + 1; j < len(leaves); j++ {
			keep[ast.CommonPrefix(leaves[i].Path, leaves[j].Path).String()] = true
		}
	}
	var out []Diff
	for _, a := range ancestors {
		if keep[a.Path.String()] {
			out = append(out, a)
		}
	}
	return out
}

type comparer struct {
	leaves    []Diff
	ancestors []Diff
}

// rec walks label-equal node pairs; it returns true when any diff was
// emitted in the subtree, in which case the caller records an ancestor
// transformation for the current pair.
func (c *comparer) rec(a, b *ast.Node, p ast.Path) bool {
	if ast.Equal(a, b) {
		return false
	}
	if a == nil || b == nil || !ast.LabelEqual(a, b) {
		// Minimal differing subtree: a replacement (or add/delete).
		c.leaves = append(c.leaves, Diff{Path: p, Left: a, Right: b})
		return true
	}
	// Labels equal, children differ: align the child lists.
	pairs := alignChildren(a.Children, b.Children)
	changed := false
	for _, pr := range pairs {
		switch {
		case pr.a >= 0 && pr.b >= 0:
			if c.rec(a.Children[pr.a], b.Children[pr.b], p.Child(pr.a)) {
				changed = true
			}
		case pr.a >= 0:
			c.leaves = append(c.leaves, Diff{Path: p.Child(pr.a), Left: a.Children[pr.a]})
			changed = true
		default:
			// Insertion: recorded at the insertion index in the left
			// tree's coordinate space.
			c.leaves = append(c.leaves, Diff{Path: p.Child(pr.ins), Right: b.Children[pr.b]})
			changed = true
		}
	}
	if changed {
		c.ancestors = append(c.ancestors, Diff{Path: p, Left: a, Right: b})
	}
	return changed
}

// pair is one aligned step: indices into the two child lists (-1 for a
// gap). For insertions (a == -1), ins is the index in the left list
// before which the right child is inserted.
type pair struct{ a, b, ins int }

// alignChildren aligns two ordered child lists. Deep-equal children are
// anchored with a longest-common-subsequence pass; within each gap,
// children are paired in order (the ordered-matching backtracking step),
// and any excess becomes deletions or insertions.
func alignChildren(as, bs []*ast.Node) []pair {
	n, m := len(as), len(bs)
	// LCS on deep equality, hashes as a fast pre-filter.
	ha := make([]ast.Hash, n)
	hb := make([]ast.Hash, m)
	for i, x := range as {
		ha[i] = ast.HashOf(x)
	}
	for j, y := range bs {
		hb[j] = ast.HashOf(y)
	}
	dp := make([][]int16, n+1)
	for i := range dp {
		dp[i] = make([]int16, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if ha[i] == hb[j] && ast.Equal(as[i], bs[j]) {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	var out []pair
	i, j := 0, 0
	var gapA, gapB []int
	flush := func(insAt int) {
		k := 0
		for ; k < len(gapA) && k < len(gapB); k++ {
			out = append(out, pair{a: gapA[k], b: gapB[k]})
		}
		for ; k < len(gapA); k++ {
			out = append(out, pair{a: gapA[k], b: -1})
		}
		for ; k < len(gapB); k++ {
			out = append(out, pair{a: -1, b: gapB[k], ins: insAt})
		}
		gapA, gapB = gapA[:0], gapB[:0]
	}
	for i < n && j < m {
		if ha[i] == hb[j] && ast.Equal(as[i], bs[j]) {
			flush(i)
			out = append(out, pair{a: i, b: j})
			i++
			j++
			continue
		}
		if dp[i+1][j] >= dp[i][j+1] {
			gapA = append(gapA, i)
			i++
		} else {
			gapB = append(gapB, j)
			j++
		}
	}
	for ; i < n; i++ {
		gapA = append(gapA, i)
	}
	for ; j < m; j++ {
		gapB = append(gapB, j)
	}
	flush(n)
	return out
}
