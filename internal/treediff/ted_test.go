package treediff

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/sqlparser"
)

func TestEditDistanceIdentity(t *testing.T) {
	qs := []string{
		"SELECT a FROM t",
		"SELECT cty, sales FROM T WHERE cty = 'USA'",
		"SELECT * FROM (SELECT a FROM T WHERE b > 10)",
	}
	for _, q := range qs {
		n := sqlparser.MustParse(q)
		if d := EditDistance(n, n.Clone()); d != 0 {
			t.Errorf("d(%q, itself) = %d", q, d)
		}
	}
}

func TestEditDistanceSingleRelabel(t *testing.T) {
	a := sqlparser.MustParse("SELECT a FROM t WHERE x = 1")
	b := sqlparser.MustParse("SELECT a FROM t WHERE x = 2")
	if d := EditDistance(a, b); d != 1 {
		t.Fatalf("single literal change distance = %d, want 1", d)
	}
	c := sqlparser.MustParse("SELECT b FROM u WHERE x = 2")
	if d := EditDistance(a, c); d != 3 {
		t.Fatalf("three relabels distance = %d, want 3", d)
	}
}

func TestEditDistanceInsertDelete(t *testing.T) {
	a := sqlparser.MustParse("SELECT a FROM t")
	b := sqlparser.MustParse("SELECT a, b FROM t")
	// Inserting a ProjClause + ColExpr = 2 nodes.
	if d := EditDistance(a, b); d != 2 {
		t.Fatalf("insert distance = %d, want 2", d)
	}
	if d := EditDistance(b, a); d != 2 {
		t.Fatalf("delete distance = %d, want 2 (symmetry)", d)
	}
}

func TestEditDistanceNil(t *testing.T) {
	n := sqlparser.MustParse("SELECT a FROM t")
	if d := EditDistance(nil, n); d != n.Size() {
		t.Fatalf("d(nil, n) = %d, want %d", d, n.Size())
	}
	if d := EditDistance(n, nil); d != n.Size() {
		t.Fatalf("d(n, nil) = %d, want %d", d, n.Size())
	}
	if d := EditDistance(nil, nil); d != 0 {
		t.Fatalf("d(nil, nil) = %d", d)
	}
}

func TestNormalizedDistanceRange(t *testing.T) {
	a := sqlparser.MustParse("SELECT a FROM t")
	b := sqlparser.MustParse("SELECT COUNT(x), y FROM u WHERE q > 1 GROUP BY y ORDER BY y DESC")
	d := NormalizedDistance(a, b)
	if d <= 0 || d > 1 {
		t.Fatalf("normalized distance = %v, want (0, 1]", d)
	}
	if NormalizedDistance(a, a.Clone()) != 0 {
		t.Fatal("identical trees must have normalized distance 0")
	}
}

// Property: metric axioms on random query trees — identity, symmetry
// and the triangle inequality.
func TestEditDistanceMetricProperties(t *testing.T) {
	gen := func(r *rand.Rand) *ast.Node {
		cols := []string{"a", "b", "c"}
		sql := "SELECT " + cols[r.Intn(3)]
		if r.Intn(2) == 0 {
			sql += ", " + cols[r.Intn(3)]
		}
		sql += " FROM t"
		if r.Intn(2) == 0 {
			sql += " WHERE x = " + string(rune('0'+r.Intn(5)))
		}
		if r.Intn(3) == 0 {
			sql += " GROUP BY " + cols[r.Intn(3)]
		}
		return sqlparser.MustParse(sql)
	}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		dab := EditDistance(a, b)
		dba := EditDistance(b, a)
		if dab != dba {
			t.Fatalf("asymmetric: d(a,b)=%d d(b,a)=%d\na=%s\nb=%s", dab, dba, a, b)
		}
		dac := EditDistance(a, c)
		dbc := EditDistance(b, c)
		if dac > dab+dbc {
			t.Fatalf("triangle violated: d(a,c)=%d > d(a,b)+d(b,c)=%d",
				dac, dab+dbc)
		}
		if ast.Equal(a, b) != (dab == 0) {
			t.Fatalf("identity of indiscernibles violated: equal=%v d=%d",
				ast.Equal(a, b), dab)
		}
	}
}

// Property: the edit distance is bounded above by the size-sum and
// below by the size difference.
func TestEditDistanceBounds(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tables := []string{"t", "u", "v"}
	for i := 0; i < 100; i++ {
		a := sqlparser.MustParse("SELECT a FROM " + tables[r.Intn(3)])
		b := sqlparser.MustParse("SELECT a, b, c FROM " + tables[r.Intn(3)] + " WHERE x = 1")
		d := EditDistance(a, b)
		lo := b.Size() - a.Size()
		if lo < 0 {
			lo = -lo
		}
		if d < lo || d > a.Size()+b.Size() {
			t.Fatalf("distance %d outside [%d, %d]", d, lo, a.Size()+b.Size())
		}
	}
}

// Distances drive clustering: queries from the same analysis must be
// closer to each other than to other analyses' queries.
func TestDistanceSeparatesAnalyses(t *testing.T) {
	lookup1 := sqlparser.MustParse("SELECT * FROM SpecLineIndex WHERE specObjId = 0x400")
	lookup2 := sqlparser.MustParse("SELECT * FROM XCRedshift WHERE specObjId = 0x199")
	olap := sqlparser.MustParse("SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState")
	within := NormalizedDistance(lookup1, lookup2)
	across := NormalizedDistance(lookup1, olap)
	if within >= across {
		t.Fatalf("within-analysis distance %v !< cross-analysis %v", within, across)
	}
}
