package experiments

import (
	"io"
	"strings"
	"testing"

	"repro/internal/qlog"
)

func runToString(t *testing.T, id string) string {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	var b strings.Builder
	if err := e.Run(&b); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return b.String()
}

func TestRegistryComplete(t *testing.T) {
	// Every table/figure of the paper's evaluation must be present.
	want := []string{
		"table1", "ex44",
		"fig5a", "fig5b", "fig5c", "fig5d", "fig5e",
		"fig6a", "fig6b", "fig6c", "fig6d",
		"fig7a", "fig7b", "fig7c",
		"fig8c", "fig9", "fig10", "fig11", "fig12", "fig13", "fig15",
	}
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup should fail for unknown ids")
	}
}

// TestTable1Output pins the leaf rows of Table 1.
func TestTable1Output(t *testing.T) {
	out := runToString(t, "table1")
	for _, frag := range []string{"0/1/0", "sales", "costs", "USA", "EUR", "str", "tree"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table1 output missing %q:\n%s", frag, out)
		}
	}
}

// TestFig5Outputs pins the widget sets the paper's Figure 5 shows.
func TestFig5Outputs(t *testing.T) {
	cases := []struct {
		id       string
		expected []string
		absent   []string
	}{
		{"fig5a", []string{"drop-down", "slider"}, []string{"radio"}},
		{"fig5b", []string{"radio-button"}, []string{"slider", "drop-down"}},
		{"fig5c", []string{"toggle-button", "drop-down"}, []string{"radio"}},
		{"fig5d", []string{"toggle-button", "slider", "[1, 10]"}, nil},
		{"fig5e", []string{"toggle-button", "slider", "[10, 20]"}, nil},
	}
	for _, c := range cases {
		out := runToString(t, c.id)
		for _, frag := range c.expected {
			if !strings.Contains(out, frag) {
				t.Errorf("%s missing %q:\n%s", c.id, frag, out)
			}
		}
		for _, frag := range c.absent {
			if strings.Contains(out, frag) {
				t.Errorf("%s unexpectedly contains %q:\n%s", c.id, frag, out)
			}
		}
		if !strings.Contains(out, "expressiveness over log=100%") {
			t.Errorf("%s: training log not fully expressible:\n%s", c.id, out)
		}
	}
}

func TestExample44Output(t *testing.T) {
	out := runToString(t, "ex44")
	if !strings.Contains(out, "276 + 125.00*n + 0.070*n^2") {
		t.Errorf("ex44 missing the published drop-down constants:\n%s", out)
	}
	if !strings.Contains(out, "4790") {
		t.Errorf("ex44 missing the textbox constant:\n%s", out)
	}
}

// TestFig6bWidgets pins the C1 interface: table drop-down, attribute
// widget, numeric slider.
func TestFig6bWidgets(t *testing.T) {
	out := runToString(t, "fig6b")
	if !strings.Contains(out, "slider") {
		t.Errorf("fig6b missing slider:\n%s", out)
	}
	if !strings.Contains(out, "SpecLineIndex") {
		t.Errorf("fig6b missing table options:\n%s", out)
	}
}

// TestMicroExperimentsDeterministic: repeated runs print identical
// output (no hidden global randomness).
func TestMicroExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"table1", "fig5a", "fig5d", "fig6b", "fig6d", "fig8c"} {
		if a, b := runToString(t, id), runToString(t, id); a != b {
			t.Errorf("%s output not deterministic", id)
		}
	}
}

// TestFig8cOutput checks the headline study numbers appear.
func TestFig8cOutput(t *testing.T) {
	out := runToString(t, "fig8c")
	if !strings.Contains(out, "sdss-form") || !strings.Contains(out, "precision-interfaces") {
		t.Fatalf("fig8c missing conditions:\n%s", out)
	}
	// SDSS Task 1 sits near the 60s cap: the rendered mean starts "5"
	// and has two digits before the decimal point.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "Task 1") && strings.Contains(line, "sdss-form") &&
			(strings.Contains(line, "  5") || strings.Contains(line, "  60")) {
			found = true
		}
	}
	if !found {
		t.Errorf("fig8c: SDSS Task 1 should sit near the 60s cap:\n%s", out)
	}
}

// TestFig13Anova checks the ANOVA lines render with significant p.
func TestFig13Anova(t *testing.T) {
	out := runToString(t, "fig13")
	for _, factor := range []string{"task:", "interface:", "order:", "task x interface:"} {
		if !strings.Contains(out, factor) {
			t.Errorf("fig13 missing ANOVA factor %q", factor)
		}
	}
}

func TestRunOneHeader(t *testing.T) {
	e, _ := Lookup("table1")
	var b strings.Builder
	if err := RunOne(&b, e); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "== table1 —") {
		t.Fatalf("missing header: %q", b.String()[:40])
	}
}

func TestTableFormatter(t *testing.T) {
	tb := newTable("a", "long-header")
	tb.add("x", 1)
	tb.add("longer-cell", 2.5)
	var b strings.Builder
	tb.write(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[0], "long-header") || !strings.Contains(lines[3], "2.5") {
		t.Fatalf("format wrong:\n%s", b.String())
	}
}

func TestRecallCurveMonotoneInputs(t *testing.T) {
	// recallCurve clamps sizes beyond the training log.
	train := qlog.FromSQL("SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 2")
	hold, err := qlog.FromSQL("SELECT a FROM t WHERE x = 1").Parse()
	if err != nil {
		t.Fatal(err)
	}
	curve, err := recallCurve(train, hold, []int{1, 2, 50}, recallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve = %v", curve)
	}
	if curve[2] != 1 {
		t.Fatalf("clamped training should express the identical holdout: %v", curve)
	}
}

func TestWidgetSummaryStable(t *testing.T) {
	out1 := runToString(t, "fig5d")
	out2 := runToString(t, "fig5d")
	if out1 != out2 {
		t.Fatal("fig5d unstable")
	}
	_ = io.Discard
}
