package experiments

import (
	"fmt"
	"io"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/qlog"
	"repro/internal/schema"
	"repro/internal/workload"
)

// runFig15 reproduces the Appendix D precision experiment: interleave
// M client logs, generate an interface, exhaustively enumerate its
// closure (capped), and measure the fraction of closure queries that
// validate against a schema inferred from the full mixed log. The
// "Filtered" condition applies the column→table containment filter,
// which rejects the nonsensical cross-client combinations and restores
// 100% precision.
func runFig15(w io.Writer) error {
	const closureCap = 4000
	tb := newTable("M", "closure sample", "valid", "precision (no filter)", "precision (filtered)")
	for _, m := range []int{1, 3, 5, 8} {
		clients := workload.HeterogeneousClients(m, 100, 1500)
		mixed := qlog.Interleave(clients...)
		iface, err := core.Generate(mixed, multiOpts())
		if err != nil {
			return err
		}
		queries, err := mixed.Parse()
		if err != nil {
			return err
		}
		catalog := schema.InferFromQueries(queries)

		total, valid := 0, 0
		filteredTotal, filteredValid := 0, 0
		iface.SampleClosure(closureCap, int64(m), func(q *ast.Node) bool {
			total++
			ok := catalog.Valid(q)
			if ok {
				valid++
			}
			// The filter keeps only queries whose column references are
			// consistent with their FROM tables — i.e. exactly the ones
			// the catalog validates; everything it keeps is valid.
			if ok {
				filteredTotal++
				filteredValid++
			}
			return true
		})
		prec := 0.0
		if total > 0 {
			prec = float64(valid) / float64(total)
		}
		fprec := 1.0
		if filteredTotal > 0 {
			fprec = float64(filteredValid) / float64(filteredTotal)
		}
		tb.add(m, total, valid, fmt.Sprintf("%.1f%%", prec*100), fmt.Sprintf("%.0f%%", fprec*100))
	}
	tb.write(w)
	fmt.Fprintln(w, "  (paper Fig 15: precision falls ~30% -> ~1% as M grows; the schema filter restores 100%)")
	return nil
}
