// Package experiments regenerates every table and figure of the
// paper's evaluation (§7 and Appendices A–D). Each experiment is a
// named runner that prints the same rows/series the paper reports;
// DESIGN.md §3 is the index and EXPERIMENTS.md records paper-vs-
// measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/interaction"
	"repro/internal/qlog"
)

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// Registry lists all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table 1: diffs records for the Figure 3 ASTs", runTable1},
		{"ex44", "Example 4.4: fitted widget cost functions", runExample44},
		{"fig5a", "Figure 5a: widgets for Listing 4 (parameter changes)", runFig5a},
		{"fig5b", "Figure 5b: single widget from a 3-query log", runFig5b},
		{"fig5c", "Figure 5c: split widgets from a 10-query log", runFig5c},
		{"fig5d", "Figure 5d: TOP toggle + slider (Listing 6)", runFig5d},
		{"fig5e", "Figure 5e: subquery toggle (Listing 7)", runFig5e},
		{"fig6a", "Figure 6a: recall vs training size, SDSS clients", runFig6a},
		{"fig6b", "Figure 6b: widgets for SDSS client C1", runFig6b},
		{"fig6c", "Figure 6c: recall, OLAP vs ad-hoc logs", runFig6c},
		{"fig6d", "Figure 6d: widgets for the OLAP log", runFig6d},
		{"fig7a", "Figure 7a: multi-client recall vs total training", runFig7a},
		{"fig7b", "Figure 7b: multi-client recall vs per-client training", runFig7b},
		{"fig7c", "Figure 7c: cross-client benefit histogram", runFig7c},
		{"fig8c", "Figure 8c: user study time and accuracy (simulated)", runFig8c},
		{"fig9", "Figure 9: pairwise recall matrix (22 clients)", runFig9},
		{"fig10", "Figure 10: histogram of hold-out recall", runFig10},
		{"fig11", "Figure 11: window size x LCA pruning", runFig11},
		{"fig12", "Figure 12: scalability to 10,000 queries", runFig12},
		{"fig13", "Figure 13: ordering effects (simulated study)", runFig13},
		{"fig15", "Figure 15: closure precision, no-filter vs filtered", runFig15},
		{"ext-cluster", "Extension (§3.3): clustering recovers per-analysis recall", runExtCluster},
		{"ext-speculate", "Extension (§4.5): dependencies, invalid options, conflicts", runExtSpeculate},
		{"ext-anomalies", "Extension (§3.3): anomalous-query removal", runExtAnomalies},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer) error {
	for _, e := range Registry() {
		if err := RunOne(w, e); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes a single experiment with a header.
func RunOne(w io.Writer, e Experiment) error {
	fmt.Fprintf(w, "== %s — %s ==\n", e.ID, e.Title)
	if err := e.Run(w); err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	fmt.Fprintln(w)
	return nil
}

// table is a tiny aligned-column printer for experiment output.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// describeWidgets renders the widget set of an interface as table rows.
func describeWidgets(tb *table, iface *core.Interface) {
	for _, w := range iface.Widgets {
		opts := w.Domain.Len()
		domain := ""
		if w.Domain.IsNumericRange() {
			lo, hi := w.Domain.Range()
			domain = fmt.Sprintf("[%g, %g]", lo, hi)
		} else {
			var vals []string
			for _, v := range w.Domain.Values() {
				s := "(absent)"
				if v != nil {
					s = ast.SQL(v)
				}
				if len(s) > 28 {
					s = s[:25] + "..."
				}
				vals = append(vals, s)
				if len(vals) == 4 {
					vals = append(vals, "...")
					break
				}
			}
			domain = strings.Join(vals, " | ")
		}
		tb.add(w.Type.Name, w.Path.String(), opts, domain)
	}
}

// generate is the shared pipeline entry for experiment logs. Micro-
// example experiments pass allPairs=true to mirror the unoptimized
// configuration their figures assume.
func generate(log *qlog.Log, allPairs bool) (*core.Interface, error) {
	opts := core.DefaultOptions()
	if allPairs {
		opts.Miner = interaction.Options{WindowSize: 0, LCAPrune: false}
	}
	return core.Generate(log, opts)
}

// recallCurve trains on growing prefixes and evaluates hold-out recall.
func recallCurve(train *qlog.Log, holdout []*ast.Node, sizes []int, opts core.Options) ([]float64, error) {
	out := make([]float64, len(sizes))
	for i, n := range sizes {
		if n > train.Len() {
			n = train.Len()
		}
		iface, err := core.Generate(train.Slice(0, n), opts)
		if err != nil {
			return nil, err
		}
		out[i] = iface.Recall(holdout)
	}
	return out, nil
}

// widgetSummary returns "type@path" for stable assertions in tests.
func widgetSummary(iface *core.Interface) []string {
	var out []string
	for _, w := range iface.Widgets {
		out = append(out, w.Type.Name+"@"+w.Path.String())
	}
	sort.Strings(out)
	return out
}
