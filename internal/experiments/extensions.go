package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/qlog"
	"repro/internal/schema"
	"repro/internal/sessions"
	"repro/internal/speculate"
	"repro/internal/workload"
)

// Extension experiments: directions the paper proposes (§3.3
// preprocessing, §4.5 speculative validation, §8 future work) that this
// reproduction implements and evaluates. They are part of the registry
// but marked ext-* since the paper reports no figures for them.

// runExtCluster quantifies the §3.3 preprocessing proposal: recall on a
// heterogeneous log, with and without tree-edit-distance clustering
// (one interface per cluster).
func runExtCluster(w io.Writer) error {
	tb := newTable("M", "train",
		"single recall", "single widgets", "single cost",
		"clusters", "clustered recall", "max widgets/interface")
	for _, m := range []int{2, 3, 5} {
		clients := workload.HeterogeneousClients(m, 200, 1700)
		mixed := qlog.Interleave(clients...)
		// Sparse training — 30 queries per client — where the mixed
		// interface struggles most.
		train := mixed.Slice(0, m*30)
		var tails []*qlog.Log
		for _, c := range clients {
			tails = append(tails, c.Slice(150, 200))
		}
		holdQ, err := qlog.Interleave(tails...).Slice(0, 60).Parse()
		if err != nil {
			return err
		}

		// Baseline: one interface over the mixed log.
		single, err := core.Generate(train, multiOpts())
		if err != nil {
			return err
		}
		singleRecall := single.Recall(holdQ)

		// Preprocessed: cluster, one interface per cluster; a query
		// counts when any interface expresses it, and each interface is
		// far simpler than the combined one.
		clusters, err := sessions.ClusterLog(train, sessions.DefaultOptions())
		if err != nil {
			return err
		}
		var ifaces []*core.Interface
		maxWidgets := 0
		for _, c := range clusters {
			iface, err := core.Generate(c.Log(train), multiOpts())
			if err != nil {
				return err
			}
			ifaces = append(ifaces, iface)
			if len(iface.Widgets) > maxWidgets {
				maxWidgets = len(iface.Widgets)
			}
		}
		covered := 0
		for _, q := range holdQ {
			for _, iface := range ifaces {
				if iface.CanExpress(q) {
					covered++
					break
				}
			}
		}
		clusteredRecall := float64(covered) / float64(len(holdQ))
		tb.add(m, train.Len(), fmt.Sprintf("%.2f", singleRecall),
			len(single.Widgets), fmt.Sprintf("%.0f", single.Cost()),
			len(clusters), fmt.Sprintf("%.2f", clusteredRecall), maxWidgets)
	}
	tb.write(w)
	fmt.Fprintln(w, "  (§3.3: clustering yields simpler per-analysis interfaces at equal or better recall;")
	fmt.Fprintln(w, "   the mixed interface also needs widgets to translate *between* analyses)")
	return nil
}

// runExtSpeculate exercises the §4.5 speculative-validation proposal on
// a mixed log: widget dependencies, invalid options and option
// conflicts the compiled page can disable.
func runExtSpeculate(w io.Writer) error {
	// Dependencies on the Listing 6 interface.
	topLog := qlog.FromSQL(
		"SELECT g.objID FROM Galaxy g",
		"SELECT TOP 1 g.objID FROM Galaxy g",
		"SELECT TOP 10 g.objID FROM Galaxy g")
	iface, err := core.Generate(topLog, core.DefaultOptions())
	if err != nil {
		return err
	}
	deps := speculate.Dependencies(iface)
	fmt.Fprintf(w, "  Listing 6 interface: %d dependency(ies)\n", len(deps))
	for _, d := range deps {
		fmt.Fprintf(w, "    widget %d (%s) active only for %d/%d states of widget %d (%s)\n",
			d.Widget, iface.Widgets[d.Widget].Type.Name,
			len(d.ActiveOptions), iface.Widgets[d.On].Domain.Len(),
			d.On, iface.Widgets[d.On].Type.Name)
	}

	// Conflicts on a two-client mixed log.
	mixed := qlog.Interleave(
		workload.SDSSClientV(workload.Lookup, 1, 10, 40),
		workload.SDSSClientV(workload.Lookup, 4, 20, 40),
	)
	mixedIface, err := core.Generate(mixed, multiOpts())
	if err != nil {
		return err
	}
	queries, err := mixed.Parse()
	if err != nil {
		return err
	}
	catalog := schema.InferFromQueries(queries)
	rep := speculate.Verify(mixedIface, catalog, 4000)
	fmt.Fprintf(w, "  mixed 2-client interface: %d checked, %d valid, %d bad options, %d conflicts\n",
		rep.Checked, rep.Valid, len(rep.BadOptions), len(rep.Conflicts))
	fmt.Fprintln(w, "  (§4.5: the compiled page disables flagged options and dependent widgets)")
	return nil
}

// runExtAnomalies shows anomaly removal (§3.3): a structured log with
// injected noise queries; removal keeps the interface simple.
func runExtAnomalies(w io.Writer) error {
	log := workload.SDSSClientV(workload.Lookup, 1, 10, 80)
	noise := []string{
		"SELECT (CASE x WHEN 1 THEN 'a' ELSE 'b' END), FLOOR(y/7) FROM weird GROUP BY z HAVING COUNT(*) > 3",
		"SELECT a, b, c, d, e FROM other1, other2, other3 WHERE q LIKE '%odd%'",
	}
	for _, n := range noise {
		log.Append(n, "noise")
	}
	dirty, err := core.Generate(log, multiOpts())
	if err != nil {
		return err
	}
	clusters, err := sessions.ClusterLog(log, sessions.DefaultOptions())
	if err != nil {
		return err
	}
	kept, removed, err := sessions.RemoveAnomalies(log, clusters, 0.3, 3)
	if err != nil {
		return err
	}
	clean, err := core.Generate(kept, multiOpts())
	if err != nil {
		return err
	}
	tb := newTable("log", "queries", "widgets", "interface cost")
	tb.add("with noise", log.Len(), dirty.Stats.WidgetCount, fmt.Sprintf("%.0f", dirty.Cost()))
	tb.add("anomalies removed", kept.Len(), clean.Stats.WidgetCount, fmt.Sprintf("%.0f", clean.Cost()))
	tb.write(w)
	fmt.Fprintf(w, "  removed %d queries", len(removed))
	nonNoise := 0
	for _, e := range removed {
		if e.Client != "noise" {
			nonNoise++
		}
	}
	fmt.Fprintf(w, " (%d legitimate)\n", nonNoise)
	return nil
}
