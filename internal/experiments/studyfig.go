package experiments

import (
	"fmt"
	"io"

	"repro/internal/study"
)

// runFig8c: the simulated user study's per-task time and accuracy under
// both interfaces.
func runFig8c(w io.Writer) error {
	obs := study.Run(study.DefaultConfig())
	tb := newTable("task", "interface", "time", "accuracy", "n")
	for _, c := range study.Summarize(obs) {
		tb.add(study.TaskNames[c.Task], c.Condition.String(),
			fmt.Sprintf("%.1fs ± %.1f", c.MeanSecs, c.CI95Secs),
			fmt.Sprintf("%.0f%%", c.Accuracy*100), c.N)
	}
	tb.write(w)
	fmt.Fprintln(w, "  (paper Fig 8c: PI 9.3s±0.8 vs SDSS 11.2s±1 on tasks 2-4; task 1: 9.9s±1.5 vs ≈60s)")
	fmt.Fprintln(w, "  NOTE: simulated participants (DESIGN.md §2); shapes, not human data.")
	return nil
}

// runFig13: ordering effects — mean time by the position at which the
// task was completed — plus the ANOVA the paper reports.
func runFig13(w io.Writer) error {
	obs := study.Run(study.DefaultConfig())
	tb := newTable("task", "interface", "order=1", "order=2", "order=3", "order=4")
	cells := study.ByOrder(obs)
	for task := 0; task < study.NumTasks; task++ {
		for _, cond := range []study.Condition{study.PrecisionInterface, study.SDSSForm} {
			row := []any{study.TaskNames[task], cond.String()}
			for order := 1; order <= study.NumTasks; order++ {
				v := "-"
				for _, c := range cells {
					if c.Task == task && c.Condition == cond && c.Order == order {
						v = fmt.Sprintf("%.1fs", c.MeanSecs)
					}
				}
				row = append(row, v)
			}
			tb.add(row...)
		}
	}
	tb.write(w)
	fmt.Fprintln(w, "  ANOVA (time as dependent variable):")
	for _, ft := range study.Anova(obs) {
		fmt.Fprintf(w, "    %s\n", ft)
	}
	fmt.Fprintln(w, "  (paper: all factors significant, p<=2e-12; interaction p=2e-16; no learning for SDSS task 1)")
	return nil
}
