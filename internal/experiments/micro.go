package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/qlog"
	"repro/internal/sqlparser"
	"repro/internal/treediff"
	"repro/internal/widgets"
)

// runTable1 reproduces Table 1: the diffs records between the two
// Figure 3 queries, with paths, subtrees and types.
func runTable1(w io.Writer) error {
	q1 := sqlparser.MustParse("SELECT cty, sales FROM T WHERE cty = 'USA'")
	q2 := sqlparser.MustParse("SELECT cty, costs FROM T WHERE cty = 'EUR'")
	res := treediff.Compare(q1, q2)
	tb := newTable("d", "q1", "q2", "p", "t1", "t2", "type")
	name := func(d treediff.Diff) (string, string) {
		l, r := "null", "null"
		if d.Left != nil {
			l = d.Left.String()
			if len(l) > 30 {
				l = d.Left.Type + "(...)"
			}
		}
		if d.Right != nil {
			r = d.Right.String()
			if len(r) > 30 {
				r = d.Right.Type + "(...)"
			}
		}
		return l, r
	}
	i := 1
	for _, d := range res.Leaves {
		l, r := name(d)
		tb.add(fmt.Sprintf("d%d", i), 1, 2, d.Path.String(), l, r, d.Kind().String())
		i++
	}
	for _, d := range res.Ancestors {
		l, r := name(d)
		tb.add(fmt.Sprintf("d%d", i), 1, 2, d.Path.String(), l, r, d.Kind().String())
		i++
	}
	tb.write(w)
	return nil
}

// runExample44 fits widget cost functions from synthetic timing traces
// and prints them next to the paper's published constants.
func runExample44(w io.Writer) error {
	tb := newTable("widget", "paper constants", "fit from synthetic traces")
	sizes := []int{2, 3, 5, 8, 13, 21, 34, 55}
	cases := []struct {
		name              string
		paper             widgets.CostFunc
		base, scan, crowd float64
	}{
		{"drop-down", widgets.Dropdown.Cost, 276, 125, 0.07},
		{"textbox", widgets.Textbox.Cost, 4790, 0, 0},
		{"slider", widgets.Slider.Cost, 320, 10, 0},
		{"radio-button", widgets.RadioButton.Cost, 200, 160, 0.1},
	}
	for _, c := range cases {
		traces := widgets.SynthesizeTraces(c.base, c.scan, c.crowd, sizes, 5)
		fit, err := widgets.FitCost(traces)
		if err != nil {
			return err
		}
		tb.add(c.name, c.paper.String(), fit.String())
	}
	tb.write(w)
	fmt.Fprintln(w, "  (the shipped library uses the paper constants; the fit shows the procedure)")
	return nil
}

// listing4Log is the Figure 5a input: a complex templated query whose
// customer name and subquery offset change.
func listing4Log() *qlog.Log {
	tmpl := "SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t " +
		"WHERE spec_ts > now AND spec_ts < now + %OFF%) " +
		"WHERE cust = '%NAME%' AND country = 'China' GROUP BY spec_ts"
	names := []string{"Alice", "Bob", "Carol"}
	offs := []string{"3", "9", "5", "7"}
	l := &qlog.Log{}
	for i := 0; i < 8; i++ {
		q := strings.ReplaceAll(tmpl, "%NAME%", names[i%3])
		q = strings.ReplaceAll(q, "%OFF%", offs[i%4])
		l.Append(q, "fig5a")
	}
	return l
}

func runFig5a(w io.Writer) error { return microWidgets(w, listing4Log(), true) }

func runFig5b(w io.Writer) error {
	return microWidgets(w, qlog.FromSQL(
		"SELECT avg(a)", "SELECT count(b)", "SELECT count(c)"), true)
}

func runFig5c(w io.Writer) error {
	return microWidgets(w, qlog.FromSQL(
		"SELECT avg(a)", "SELECT count(b)", "SELECT count(c)",
		"SELECT avg(b)", "SELECT count(a)", "SELECT avg(c)",
		"SELECT avg(d)", "SELECT avg(e)", "SELECT count(d)", "SELECT count(e)"), true)
}

func runFig5d(w io.Writer) error {
	return microWidgets(w, qlog.FromSQL(
		"SELECT g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848,0.352,2.0616) as d WHERE d.objID = g.objID",
		"SELECT TOP 1 g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848,0.352,2.0616) as d WHERE d.objID = g.objID",
		"SELECT TOP 10 g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848,0.352,2.0616) as d WHERE d.objID = g.objID"), false)
}

func runFig5e(w io.Writer) error {
	return microWidgets(w, qlog.FromSQL(
		"SELECT * FROM T",
		"SELECT * FROM (SELECT a FROM T WHERE b > 10)",
		"SELECT * FROM (SELECT a FROM T WHERE b > 20)",
		"SELECT * FROM (SELECT b FROM T WHERE b > 20)"), false)
}

// microWidgets generates an interface for a micro-log and prints its
// widgets and log expressiveness.
func microWidgets(w io.Writer, l *qlog.Log, allPairs bool) error {
	iface, err := generate(l, allPairs)
	if err != nil {
		return err
	}
	tb := newTable("widget", "path", "|domain|", "domain")
	describeWidgets(tb, iface)
	tb.write(w)
	queries, err := l.Parse()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  cost=%.0f  expressiveness over log=%.0f%%  closure(distinct, cap 1000)=%d\n",
		iface.Cost(), iface.Expressiveness(queries)*100, iface.ClosureSize(1000))
	return nil
}
