package experiments

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/interaction"
	"repro/internal/qlog"
	"repro/internal/workload"
)

// recallOpts is the mining configuration for the generalization
// experiments: the paper's default sliding window of 2 with LCA
// pruning. On these structured logs consecutive queries change one
// thing at a time, so windowed mining yields the fine-grained widgets
// of Figures 6b/6d; all-pairs mining would accumulate whole-clause
// ancestor domains from distant query pairs and collapse them into one
// coarse widget (see BenchmarkAblationWindow).
func recallOpts() core.Options {
	return core.Options{Miner: interaction.Options{WindowSize: 2, LCAPrune: true}}
}

var trainingSizes = []int{1, 2, 5, 10, 20, 30, 50, 75, 100}

// runFig6a: nine SDSS client logs, 100 hold-out queries each, training
// on 1..100 prefix queries.
func runFig6a(w io.Writer) error {
	archs := []workload.Archetype{
		workload.Lookup, workload.Lookup, workload.Lookup,
		workload.Radial, workload.Radial,
		workload.Filter, workload.Filter,
		workload.SlowBurn, // the C5-like client
		workload.Lookup,
	}
	tb := newTable(append([]string{"client"}, sizeHeaders()...)...)
	for i, a := range archs {
		l := workload.SDSSClient(a, int64(100+i*13), 200)
		train, hold := l.Split(100)
		holdQ, err := hold.Parse()
		if err != nil {
			return err
		}
		curve, err := recallCurve(train, holdQ, trainingSizes, recallOpts())
		if err != nil {
			return err
		}
		row := []any{fmt.Sprintf("C%d(%s)", i+1, a)}
		for _, r := range curve {
			row = append(row, fmt.Sprintf("%.2f", r))
		}
		tb.add(row...)
	}
	tb.write(w)
	fmt.Fprintln(w, "  (paper: ~10 queries suffice for most clients; 50 reach 100%; the slow-burn client climbs slowly)")
	return nil
}

func sizeHeaders() []string {
	out := make([]string, len(trainingSizes))
	for i, n := range trainingSizes {
		out[i] = fmt.Sprintf("n=%d", n)
	}
	return out
}

// runFig6b: the interface generated for a C1-style lookup client.
func runFig6b(w io.Writer) error {
	l := workload.SDSSClient(workload.Lookup, 100, 100)
	iface, err := core.Generate(l, recallOpts())
	if err != nil {
		return err
	}
	tb := newTable("widget", "path", "|domain|", "domain")
	describeWidgets(tb, iface)
	tb.write(w)
	fmt.Fprintln(w, "  (paper Fig 6b: widgets to change the table, attribute name, and a slider for the numeric id)")
	return nil
}

// runFig6c: recall curves for the synthetic OLAP log and the ad-hoc
// student log.
func runFig6c(w io.Writer) error {
	tb := newTable(append([]string{"log"}, sizeHeaders()...)...)
	for _, c := range []struct {
		name string
		l    *qlog.Log
	}{
		{"OLAP", workload.OLAPLog(200, 41)},
		{"ad-hoc", workload.AdhocLog(200, 43)},
	} {
		train, hold := c.l.Split(100)
		holdQ, err := hold.Parse()
		if err != nil {
			return err
		}
		curve, err := recallCurve(train, holdQ, trainingSizes, recallOpts())
		if err != nil {
			return err
		}
		row := []any{c.name}
		for _, r := range curve {
			row = append(row, fmt.Sprintf("%.2f", r))
		}
		tb.add(row...)
	}
	tb.write(w)
	fmt.Fprintln(w, "  (paper: OLAP climbs slower than SDSS but converges; ad-hoc plateaus around 20%)")
	return nil
}

// runFig6d: the interface generated from the first 100 OLAP queries.
func runFig6d(w io.Writer) error {
	l := workload.OLAPLog(100, 41)
	iface, err := core.Generate(l, recallOpts())
	if err != nil {
		return err
	}
	tb := newTable("widget", "path", "|domain|", "domain")
	describeWidgets(tb, iface)
	tb.write(w)
	fmt.Fprintln(w, "  (paper Fig 6d: drop-downs for aggregation/grouping changes, sliders for predicates)")
	return nil
}

// multiClientLogs returns M genuinely heterogeneous client logs of 200
// queries each (distinct archetypes and vocabulary variants, §7.2.3).
func multiClientLogs(m int, seed int64) []*qlog.Log {
	return workload.HeterogeneousClients(m, 200, seed)
}

// multiOpts mines all pairs: in a round-robin interleaved log the
// paper's window=2 would only ever compare queries from different
// clients, so the heterogeneity experiments need the unwindowed miner.
func multiOpts() core.Options {
	return core.Options{Miner: interaction.Options{WindowSize: 0, LCAPrune: true}}
}

// runFig7a: interleave M clients, vary the TOTAL number of training
// queries; recall rises slowly because each client contributes few
// examples.
func runFig7a(w io.Writer) error {
	totals := []int{5, 10, 20, 40, 60, 80, 100}
	head := []string{"M"}
	for _, n := range totals {
		head = append(head, fmt.Sprintf("n=%d", n))
	}
	tb := newTable(head...)
	for _, m := range []int{1, 3, 5, 8} {
		mixed := qlog.Interleave(multiClientLogs(m, 500)...)
		train, hold := mixed.Split(mixed.Len() - 50)
		holdQ, err := hold.Parse()
		if err != nil {
			return err
		}
		curve, err := recallCurve(train, holdQ, totals, multiOpts())
		if err != nil {
			return err
		}
		row := []any{m}
		for _, r := range curve {
			row = append(row, fmt.Sprintf("%.2f", r))
		}
		tb.add(row...)
	}
	tb.write(w)
	fmt.Fprintln(w, "  (paper Fig 7a: recall increases slowly for heterogeneous logs at fixed total training)")
	return nil
}

// runFig7b: vary the number of training queries PER CLIENT; each client
// is simple, so recall rises as fast as the single-client case.
func runFig7b(w io.Writer) error {
	perClient := []int{1, 2, 5, 10, 20, 40}
	head := []string{"M"}
	for _, n := range perClient {
		head = append(head, fmt.Sprintf("n/client=%d", n))
	}
	tb := newTable(head...)
	for _, m := range []int{1, 3, 5, 8} {
		clients := multiClientLogs(m, 500)
		// Holdout: 50 queries interleaved from the tails of all clients
		// so every client is represented.
		var tails []*qlog.Log
		for _, c := range clients {
			tails = append(tails, c.Slice(150, 200))
		}
		holdLog := qlog.Interleave(tails...).Slice(0, 50)
		holdQ, err := holdLog.Parse()
		if err != nil {
			return err
		}
		row := []any{m}
		for _, n := range perClient {
			var trains []*qlog.Log
			for _, c := range clients {
				trains = append(trains, c.Slice(0, n))
			}
			train := qlog.Interleave(trains...)
			iface, err := core.Generate(train, multiOpts())
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", iface.Recall(holdQ)))
		}
		tb.add(row...)
	}
	tb.write(w)
	fmt.Fprintln(w, "  (paper Fig 7b: recall rises rapidly when each client gets its own training examples)")
	return nil
}

// crossClientRecall computes the 22x22 recall matrix shared by Figures
// 7c, 9 and 10. The computation is deterministic, so it is memoized
// across the three figures.
var crossClientCache struct {
	once   sync.Once
	matrix [][]float64
	names  []string
	err    error
}

func crossClientRecall() ([][]float64, []string, error) {
	crossClientCache.once.Do(func() {
		crossClientCache.matrix, crossClientCache.names, crossClientCache.err = computeCrossClientRecall()
	})
	return crossClientCache.matrix, crossClientCache.names, crossClientCache.err
}

func computeCrossClientRecall() ([][]float64, []string, error) {
	const m = 22
	clients := workload.SDSSClients(m, 100, 900)
	names := make([]string, m)
	ifaces := make([]*core.Interface, m)
	queries := make([][]*ast.Node, m)
	for i, c := range clients {
		names[i] = fmt.Sprintf("C%02d", i+1)
		var err error
		ifaces[i], err = core.Generate(c, recallOpts())
		if err != nil {
			return nil, nil, err
		}
		queries[i], err = c.Parse()
		if err != nil {
			return nil, nil, err
		}
	}
	matrix := make([][]float64, m)
	for i := range matrix {
		matrix[i] = make([]float64, m)
		for j := range matrix[i] {
			matrix[i][j] = ifaces[i].Recall(queries[j])
		}
	}
	return matrix, names, nil
}

// runFig7c: per training client, count hold-out clients with recall > 0.5.
func runFig7c(w io.Writer) error {
	matrix, _, err := crossClientRecall()
	if err != nil {
		return err
	}
	counts := map[int]int{} // benefited-clients -> #training clients
	for i := range matrix {
		n := 0
		for j := range matrix[i] {
			if i != j && matrix[i][j] > 0.5 {
				n++
			}
		}
		counts[n]++
	}
	tb := newTable("#hold-out clients with recall>0.5", "#training clients")
	max := 0
	for k := range counts {
		if k > max {
			max = k
		}
	}
	for k := 0; k <= max; k++ {
		if counts[k] > 0 {
			tb.add(k, counts[k])
		}
	}
	tb.write(w)
	fmt.Fprintln(w, "  (paper Fig 7c: most interfaces benefit >=1 other client; 7 interfaces express 6 others)")
	return nil
}

// runFig9: the full pairwise recall matrix.
func runFig9(w io.Writer) error {
	matrix, names, err := crossClientRecall()
	if err != nil {
		return err
	}
	head := append([]string{"train\\hold"}, names...)
	tb := newTable(head...)
	for i, row := range matrix {
		cells := []any{names[i]}
		for _, v := range row {
			cells = append(cells, fmt.Sprintf("%.1f", v))
		}
		tb.add(cells...)
	}
	tb.write(w)
	return nil
}

// runFig10: histogram of off-diagonal recall values (bimodal).
func runFig10(w io.Writer) error {
	matrix, _, err := crossClientRecall()
	if err != nil {
		return err
	}
	bins := make([]int, 11)
	for i := range matrix {
		for j := range matrix[i] {
			if i == j {
				continue
			}
			b := int(matrix[i][j] * 10)
			if b > 10 {
				b = 10
			}
			bins[b]++
		}
	}
	tb := newTable("recall bin", "count")
	for b, n := range bins {
		lo := float64(b) / 10
		tb.add(fmt.Sprintf("[%.1f, %.1f)", lo, lo+0.1), n)
	}
	tb.write(w)
	lowHigh := bins[0] + bins[10]
	total := 0
	for _, n := range bins {
		total += n
	}
	fmt.Fprintf(w, "  bimodality: %d/%d of mass in the extreme bins (paper: recall is 0 or 1)\n", lowHigh, total)
	return nil
}
