package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/interaction"
	"repro/internal/workload"
)

// runFig11: vary the sliding window size with LCA pruning on and off
// over per-client logs (~100 queries each); report interaction-graph
// size and mining/mapping time. Appendix B's headline: LCA pruning
// shrinks the graph ~5x at large windows, window=2 drives runtime to
// near zero, and the output interfaces do not change.
func runFig11(w io.Writer) error {
	clients := workload.SDSSClients(6, 100, 300)
	windows := []int{2, 5, 10, 25, 50, 100}
	tb := newTable("window", "LCA", "diff records", "edges", "mine", "map", "widgets")
	type key struct {
		win int
		lca bool
	}
	widgetsByCfg := map[key][]string{}
	for _, lca := range []bool{false, true} {
		for _, win := range windows {
			var recs, edges, nwidgets int
			var mine, mapping time.Duration
			var sig []string
			for _, c := range clients {
				iface, err := core.Generate(c, core.Options{
					Miner: interaction.Options{WindowSize: win, LCAPrune: lca},
				})
				if err != nil {
					return err
				}
				recs += iface.Stats.DiffRecords
				edges += iface.Stats.Edges
				mine += iface.Stats.MineTime
				mapping += iface.Stats.MapTime
				nwidgets += iface.Stats.WidgetCount
				sig = append(sig, widgetSummary(iface)...)
			}
			widgetsByCfg[key{win, lca}] = sig
			tb.add(win, onOff(lca), recs, edges,
				mine.Round(time.Microsecond).String(),
				mapping.Round(time.Microsecond).String(), nwidgets)
		}
	}
	tb.write(w)
	// Output-invariance check (Appendix B: "the resulting interfaces
	// remain the same").
	base := widgetsByCfg[key{windows[len(windows)-1], false}]
	same := true
	for _, sig := range widgetsByCfg {
		if !equalStrings(sig, base) {
			same = false
			break
		}
	}
	fmt.Fprintf(w, "  interfaces identical across configurations: %v\n", same)
	return nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runFig12: the scalability experiment — the full heterogeneous log at
// 500..10,000 queries with window=2 and LCA pruning. The paper's
// headline: 10,000 queries within 10 seconds.
func runFig12(w io.Writer) error {
	sizes := []int{500, 1000, 2000, 5000, 10000}
	tb := newTable("queries", "edges", "diff records", "parse", "mine", "map", "total", "widgets")
	for _, n := range sizes {
		l := workload.SDSSFullLog(n, 77)
		start := time.Now()
		iface, err := core.Generate(l, core.DefaultOptions())
		if err != nil {
			return err
		}
		total := time.Since(start)
		tb.add(n, iface.Stats.Edges, iface.Stats.DiffRecords,
			iface.Stats.ParseTime.Round(time.Millisecond).String(),
			iface.Stats.MineTime.Round(time.Millisecond).String(),
			iface.Stats.MapTime.Round(time.Millisecond).String(),
			total.Round(time.Millisecond).String(),
			iface.Stats.WidgetCount)
		if n == 10000 && total > 10*time.Second {
			fmt.Fprintf(w, "  WARNING: 10k queries took %v (> paper's 10s budget)\n", total)
		}
	}
	tb.write(w)
	fmt.Fprintln(w, "  (paper Fig 12: ~quadratic edge growth with log size; 10k queries in < 10s)")
	return nil
}
