package sqlparser

import (
	"fmt"
	"strings"

	"repro/internal/ast"
)

// Parse parses a single SQL SELECT statement into its AST. A trailing
// semicolon is allowed; any other trailing input is an error.
func Parse(sql string) (*ast.Node, error) {
	p, err := newParser(sql)
	if err != nil {
		return nil, err
	}
	stmt, perr := p.parseSelect()
	if perr != nil {
		return nil, perr
	}
	if p.peek().kind == tokSemi {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %s", p.peek())
	}
	return stmt, nil
}

// ParseMany parses a script of semicolon-separated SELECT statements.
func ParseMany(sql string) ([]*ast.Node, error) {
	p, err := newParser(sql)
	if err != nil {
		return nil, err
	}
	var out []*ast.Node
	for p.peek().kind != tokEOF {
		if p.peek().kind == tokSemi {
			p.advance()
			continue
		}
		stmt, perr := p.parseSelect()
		if perr != nil {
			return nil, perr
		}
		out = append(out, stmt)
		if p.peek().kind == tokSemi {
			p.advance()
		} else if p.peek().kind != tokEOF {
			return nil, p.errorf("expected ';' between statements, got %s", p.peek())
		}
	}
	return out, nil
}

// MustParse parses sql and panics on error; intended for tests and
// workload generators whose inputs are program constants.
func MustParse(sql string) *ast.Node {
	n, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	src  string
	toks []token
	i    int
}

func newParser(sql string) (*parser, *Error) {
	toks, err := newLexer(sql).lex()
	if err != nil {
		return nil, err
	}
	return &parser{src: sql, toks: toks}, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) peek2() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) *Error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) expect(kind tokenKind) (token, *Error) {
	if p.peek().kind != kind {
		return token{}, p.errorf("expected %s, got %s", kind, p.peek())
	}
	return p.advance(), nil
}

func (p *parser) errorf(format string, args ...any) *Error {
	return &Error{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...), SQL: p.src}
}

// parseSelect parses SELECT [DISTINCT] [TOP n] projlist [FROM ...]
// [WHERE ...] [GROUP BY ...] [HAVING ...] [ORDER BY ...] [LIMIT n].
func (p *parser) parseSelect() (*ast.Node, *Error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := ast.NewSelect()
	if p.acceptKeyword("distinct") {
		sel.SetAttr("distinct", "true")
	}
	if p.acceptKeyword("top") {
		n, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		sel.Children[ast.SlotLimit] = ast.NewAttr(ast.TypeLimit, "kind", "top", n)
	}

	proj, err := p.parseProjectList()
	if err != nil {
		return nil, err
	}
	sel.Children[ast.SlotProject] = proj

	if p.acceptKeyword("from") {
		from, err := p.parseFromList()
		if err != nil {
			return nil, err
		}
		sel.Children[ast.SlotFrom] = from
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Children[ast.SlotWhere] = ast.New(ast.TypeWhere, e)
	}
	if p.atKeyword("group") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		g := ast.New(ast.TypeGroupBy)
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			g.Children = append(g.Children, e)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
		sel.Children[ast.SlotGroupBy] = g
	}
	if p.acceptKeyword("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Children[ast.SlotHaving] = ast.New(ast.TypeHaving, e)
	}
	if p.atKeyword("order") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		o := ast.New(ast.TypeOrderBy)
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oc := ast.New(ast.TypeOrderClause, e)
			if p.acceptKeyword("desc") {
				oc.SetAttr("dir", "desc")
			} else if p.acceptKeyword("asc") {
				oc.SetAttr("dir", "asc")
			}
			o.Children = append(o.Children, oc)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
		sel.Children[ast.SlotOrderBy] = o
	}
	if p.acceptKeyword("limit") {
		if !ast.IsEmptyClause(sel.Children[ast.SlotLimit]) {
			return nil, p.errorf("both TOP and LIMIT present")
		}
		n, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		sel.Children[ast.SlotLimit] = ast.NewAttr(ast.TypeLimit, "kind", "limit", n)
	}
	return sel, nil
}

func (p *parser) parseProjectList() (*ast.Node, *Error) {
	proj := ast.New(ast.TypeProject)
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		pc := ast.New(ast.TypeProjClause, e)
		if alias, ok, err := p.parseOptAlias(); err != nil {
			return nil, err
		} else if ok {
			pc.SetAttr("alias", alias)
		}
		proj.Children = append(proj.Children, pc)
		if p.peek().kind != tokComma {
			return proj, nil
		}
		p.advance()
	}
}

// parseOptAlias accepts "AS ident" or a bare identifier alias.
func (p *parser) parseOptAlias() (string, bool, *Error) {
	if p.acceptKeyword("as") {
		t, err := p.expect(tokIdent)
		if err != nil {
			return "", false, err
		}
		return t.text, true, nil
	}
	if p.peek().kind == tokIdent {
		return p.advance().text, true, nil
	}
	return "", false, nil
}

func (p *parser) parseFromList() (*ast.Node, *Error) {
	from := ast.New(ast.TypeFrom)
	for {
		fc, err := p.parseJoinChain()
		if err != nil {
			return nil, err
		}
		from.Children = append(from.Children, fc)
		if p.peek().kind != tokComma {
			return from, nil
		}
		p.advance()
	}
}

// parseJoinChain parses item ([INNER|LEFT [OUTER]] JOIN item ON expr)*,
// left-associated: each join wraps the accumulated clause and the new
// relation in a JoinExpr inside a fresh FromClause.
func (p *parser) parseJoinChain() (*ast.Node, *Error) {
	fc, err := p.parseFromItem()
	if err != nil {
		return nil, err
	}
	for {
		kind := ""
		switch {
		case p.atKeyword("join"):
			p.advance()
			kind = "inner"
		case p.atKeyword("inner") && p.peek2().kind == tokKeyword && p.peek2().text == "join":
			p.advance()
			p.advance()
			kind = "inner"
		case p.atKeyword("left"):
			p.advance()
			p.acceptKeyword("outer")
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			kind = "left"
		default:
			return fc, nil
		}
		right, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc = ast.New(ast.TypeFromClause,
			ast.NewAttr(ast.TypeJoin, "kind", kind, fc, right, cond))
	}
}

func (p *parser) parseFromItem() (*ast.Node, *Error) {
	var rel *ast.Node
	switch {
	case p.peek().kind == tokLParen:
		p.advance()
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		rel = ast.New(ast.TypeSubQuery, sub)
	case p.peek().kind == tokIdent:
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		if p.peek().kind == tokLParen {
			// Table-valued function, e.g. dbo.fGetNearbyObjEq(5.8, 0.3, 2.0).
			args, err := p.parseCallArgs()
			if err != nil {
				return nil, err
			}
			rel = ast.New(ast.TypeTabFunc,
				append([]*ast.Node{ast.Leaf(ast.TypeFuncName, strings.ToLower(name))}, args...)...)
		} else {
			rel = ast.Leaf(ast.TypeTabExpr, name)
		}
	default:
		return nil, p.errorf("expected table reference, got %s", p.peek())
	}
	fc := ast.New(ast.TypeFromClause, rel)
	if alias, ok, err := p.parseOptAlias(); err != nil {
		return nil, err
	} else if ok {
		fc.SetAttr("alias", alias)
	}
	return fc, nil
}

// parseQualifiedName parses ident(.ident)* into a dotted string.
func (p *parser) parseQualifiedName() (string, *Error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	name := t.text
	for p.peek().kind == tokDot && p.peek2().kind == tokIdent {
		p.advance()
		name += "." + p.advance().text
	}
	return name, nil
}

// parseCallArgs parses "( expr, ... )" (already positioned at '(').
func (p *parser) parseCallArgs() ([]*ast.Node, *Error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var args []*ast.Node
	if p.peek().kind == tokRParen {
		p.advance()
		return args, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return args, nil
	}
}
