package sqlparser

import (
	"strings"
)

// lexer tokenizes a SQL string. It is deliberately permissive about
// whitespace and comments since real query logs contain both.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// lex tokenizes the whole input up front; logs contain short statements
// so a two-pass design keeps the parser simple.
func (l *lexer) lex() ([]token, *Error) {
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (token, *Error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == ';':
		l.pos++
		return token{tokSemi, ";", start}, nil
	case c == '.':
		// A dot starting a number (".5") lexes as a number; otherwise a
		// qualifier separator.
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.lexNumber()
		}
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '\'':
		return l.lexString()
	case c == '"' || c == '[' || c == '`':
		return l.lexQuotedIdent()
	case isDigit(c):
		return l.lexNumber()
	case isIdentStart(c):
		return l.lexWord()
	case strings.IndexByte("=<>!+-/%", c) >= 0:
		return l.lexOp()
	}
	return token{}, &Error{Pos: start, Msg: "unexpected character " + string(c), SQL: l.src}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func (l *lexer) lexString() (token, *Error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{tokString, b.String(), start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, &Error{Pos: start, Msg: "unterminated string literal", SQL: l.src}
}

func (l *lexer) lexQuotedIdent() (token, *Error) {
	start := l.pos
	open := l.src[l.pos]
	close := open
	if open == '[' {
		close = ']'
	}
	l.pos++
	end := strings.IndexByte(l.src[l.pos:], close)
	if end < 0 {
		return token{}, &Error{Pos: start, Msg: "unterminated quoted identifier", SQL: l.src}
	}
	text := l.src[l.pos : l.pos+end]
	l.pos += end + 1
	return token{tokIdent, text, start}, nil
}

func (l *lexer) lexNumber() (token, *Error) {
	start := l.pos
	// Hex literal: SDSS logs use 0x... object ids.
	if l.src[l.pos] == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start+2 {
			return token{}, &Error{Pos: start, Msg: "malformed hex literal", SQL: l.src}
		}
		return token{tokHexNumber, l.src[start:l.pos], start}, nil
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) &&
			(isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+') {
			l.pos += 2
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		break
	}
	return token{tokNumber, l.src[start:l.pos], start}, nil
}

func (l *lexer) lexWord() (token, *Error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	w := l.src[start:l.pos]
	if keywords[strings.ToLower(w)] {
		return token{tokKeyword, strings.ToLower(w), start}, nil
	}
	return token{tokIdent, w, start}, nil
}

func (l *lexer) lexOp() (token, *Error) {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		return token{tokOp, two, start}, nil
	}
	c := l.src[l.pos]
	l.pos++
	if c == '!' {
		return token{}, &Error{Pos: start, Msg: "unexpected '!'", SQL: l.src}
	}
	return token{tokOp, string(c), start}, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool   { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }
func isIdentStart(c byte) bool { return c == '_' || c == '@' || c == '#' || isAlpha(c) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) || c == '$' }
func isAlpha(c byte) bool      { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
