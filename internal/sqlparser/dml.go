package sqlparser

import "repro/internal/ast"

// ParseStatement parses a single SQL statement — SELECT, UPDATE or
// DELETE — into its AST. It is the entry point for the DML path
// (interface mutations); the mining pipeline keeps using Parse, which
// stays SELECT-only so query logs containing stray DML are dropped per
// entry instead of poisoning a re-mine.
func ParseStatement(sql string) (*ast.Node, error) {
	p, err := newParser(sql)
	if err != nil {
		return nil, err
	}
	var stmt *ast.Node
	var perr *Error
	switch {
	case p.atKeyword("update"):
		stmt, perr = p.parseUpdate()
	case p.atKeyword("delete"):
		stmt, perr = p.parseDelete()
	default:
		stmt, perr = p.parseSelect()
	}
	if perr != nil {
		return nil, perr
	}
	if p.peek().kind == tokSemi {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %s", p.peek())
	}
	return stmt, nil
}

// parseUpdate parses UPDATE table SET col = expr {, col = expr}
// [WHERE expr]. The target is a plain (possibly qualified) table name —
// no joins, aliases or subqueries on the write path.
func (p *parser) parseUpdate() (*ast.Node, *Error) {
	if err := p.expectKeyword("update"); err != nil {
		return nil, err
	}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	set := ast.New(ast.TypeSet)
	for {
		col, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if t := p.peek(); t.kind != tokOp || t.text != "=" {
			return nil, p.errorf("expected '=' after SET column %q, got %s", col.text, t)
		}
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		set.Children = append(set.Children, ast.NewAttr(ast.TypeSetItem, "col", col.text, e))
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	where, perr := p.parseOptWhere()
	if perr != nil {
		return nil, perr
	}
	return ast.New(ast.TypeUpdate, ast.Leaf(ast.TypeTabExpr, name), set, where), nil
}

// parseDelete parses DELETE FROM table [WHERE expr].
func (p *parser) parseDelete() (*ast.Node, *Error) {
	if err := p.expectKeyword("delete"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	where, perr := p.parseOptWhere()
	if perr != nil {
		return nil, perr
	}
	return ast.New(ast.TypeDelete, ast.Leaf(ast.TypeTabExpr, name), where), nil
}

// parseOptWhere parses an optional WHERE clause, returning an empty
// Where node when absent (same shape as Select's fixed slot, so
// IsEmptyClause works uniformly).
func (p *parser) parseOptWhere() (*ast.Node, *Error) {
	if !p.acceptKeyword("where") {
		return ast.New(ast.TypeWhere), nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return ast.New(ast.TypeWhere, e), nil
}
