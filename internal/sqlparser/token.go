// Package sqlparser is a hand-written lexer and recursive-descent parser
// for the SQL subset appearing in the paper's query logs (SDSS, OLAP and
// ad-hoc student queries). It replaces the third-party parsing service
// the paper used and emits internal/ast trees directly.
package sqlparser

import "fmt"

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokHexNumber
	tokString
	tokOp // symbolic operators: = <> != < <= > >= + - * / %
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokSemi
	tokStar
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokKeyword:
		return "keyword"
	case tokNumber:
		return "number"
	case tokHexNumber:
		return "hex number"
	case tokString:
		return "string"
	case tokOp:
		return "operator"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokSemi:
		return "';'"
	case tokStar:
		return "'*'"
	}
	return "?"
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string // raw text; keywords lower-cased
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "EOF"
	}
	return fmt.Sprintf("%s %q", t.kind, t.text)
}

// keywords recognized by the lexer (matched case-insensitively).
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"by": true, "having": true, "order": true, "limit": true,
	"top": true, "distinct": true, "as": true, "and": true, "or": true,
	"not": true, "in": true, "between": true, "like": true, "is": true,
	"null": true, "case": true, "when": true, "then": true, "else": true,
	"end": true, "cast": true, "asc": true, "desc": true, "true": true,
	"false": true, "join": true, "inner": true, "left": true,
	"outer": true, "on": true, "update": true, "delete": true,
	"set": true,
}

// Error is a parse error with the byte offset where it occurred.
type Error struct {
	Pos int
	Msg string
	SQL string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sqlparser: %s at offset %d in %q", e.Msg, e.Pos, truncate(e.SQL, 80))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
