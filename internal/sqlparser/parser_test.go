package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

// paperQueries collects every query listing that appears in the paper;
// the parser must accept all of them.
var paperQueries = []string{
	// Figure 3.
	"SELECT cty, sales FROM T WHERE cty = 'USA'",
	"SELECT cty, costs FROM T WHERE cty = 'EUR'",
	// Listing 1 (SDSS).
	"SELECT * FROM SpecLineIndex WHERE specObjId= 0x400 ;",
	"SELECT * FROM XCRedshift WHERE specObjId= 0x199 ;",
	"SELECT * FROM SpecLineIndex WHERE specObjId= 0x3 ;",
	// Listing 2 (OLAP).
	"SELECT COUNT(Delay), DestState FROM ontime WHERE Month =9 and Day=3 GROUP BY DestState;",
	"SELECT DestState FROM ontime WHERE Month= 9 and Day=3 GROUP BY DestState;",
	"SELECT DestState FROM ontime WHERE Month= 8 and Day=3 GROUP BY DestState;",
	// Listing 3 (ad-hoc).
	"SELECT CAST(uniquecarrier) AS uniquecarrier FROM ontime;",
	"SELECT SUM(flights) FROM ontime WHERE canceled = 1 HAVING SUM(flights) > 149 and SUM(flights) < 1354;",
	"SELECT (CASE carrier WHEN 'AA' THEN 'AA' ELSE 'Other' END) AS carrier, FLOOR(distance/5) AS distance FROM ontime;",
	// Listing 4.
	`SELECT spec_ts, sum(price) FROM (
		SELECT action, sum(customer) FROM t
		WHERE spec_ts > now and spec_ts < now + 3
	) WHERE cust = 'Alice' and country = 'China' GROUP BY spec_ts;`,
	// Listing 5.
	"SELECT avg ( a )",
	"SELECT count ( b )",
	// Listing 6 (SDSS UDF).
	"SELECT g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) as d WHERE d.objID = g.objID;",
	"SELECT TOP 1 g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) as d WHERE d.objID = g.objID;",
	"SELECT TOP 10 g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) as d WHERE d.objID = g.objID;",
	// Listing 7.
	"SELECT * FROM T;",
	"SELECT * FROM (SELECT a FROM T WHERE b > 10);",
	"SELECT * FROM (SELECT a FROM T WHERE b > 20);",
	"SELECT * FROM (SELECT b FROM T WHERE b > 20);",
}

func TestParsePaperQueries(t *testing.T) {
	for _, q := range paperQueries {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}

// TestRoundTrip checks the unparse/reparse fixpoint: parse(SQL(parse(q)))
// must be structurally equal to parse(q).
func TestRoundTrip(t *testing.T) {
	extra := []string{
		"SELECT DISTINCT a, b AS bb FROM t1, t2 u WHERE a IN (1, 2, 3) ORDER BY a DESC, b LIMIT 5",
		"SELECT a FROM t WHERE x BETWEEN 1 AND 10 AND y NOT IN ('p', 'q')",
		"SELECT a FROM t WHERE NOT (x = 1 OR y LIKE 'ab%')",
		"SELECT a FROM t WHERE x IS NOT NULL AND y IS NULL",
		"SELECT COUNT(*), COUNT(DISTINCT a) FROM t GROUP BY b HAVING COUNT(*) > 2",
		"SELECT -x + 3 * (y - 2) / z % 4 FROM t",
		"SELECT CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END FROM t",
		"SELECT CASE a WHEN 1 THEN 'one' END FROM t",
		"SELECT t.* FROM db.schema_tbl t",
		"SELECT a FROM t WHERE id = 0xDEADbeef",
		"SELECT a FROM t WHERE v = 1.5e3 OR v = .5",
		"SELECT a FROM t WHERE c IN (SELECT c FROM u WHERE d = 2)",
		"SELECT CAST(a AS int) FROM t",
		"SELECT TRUE, FALSE, NULL FROM t",
	}
	for _, q := range append(append([]string{}, paperQueries...), extra...) {
		first, err := Parse(q)
		if err != nil {
			t.Errorf("Parse(%q): %v", q, err)
			continue
		}
		rendered := ast.SQL(first)
		second, err := Parse(rendered)
		if err != nil {
			t.Errorf("reparse of %q (rendered %q): %v", q, rendered, err)
			continue
		}
		if !ast.Equal(first, second) {
			t.Errorf("round trip changed tree for %q:\nrendered: %s\nfirst:  %s\nsecond: %s",
				q, rendered, first, second)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET a = 1",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE x = ",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t WHERE 'unterminated",
		"SELECT a FROM t WHERE x = 0x",
		"SELECT a b c FROM t",
		"SELECT a FROM t WHERE x ! 1",
		"SELECT a FROM (SELECT b FROM t",
		"SELECT TOP 1 a FROM t LIMIT 2",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error, got none", q)
		}
	}
}

func TestFixedSlotLayout(t *testing.T) {
	n := MustParse("SELECT a FROM t")
	if len(n.Children) != ast.NumSlots {
		t.Fatalf("Select has %d slots, want %d", len(n.Children), ast.NumSlots)
	}
	if !ast.IsEmptyClause(n.Child(ast.SlotWhere)) {
		t.Fatal("absent WHERE should be an empty clause node")
	}
	n2 := MustParse("SELECT a FROM t WHERE b = 1")
	if ast.IsEmptyClause(n2.Child(ast.SlotWhere)) {
		t.Fatal("present WHERE should not be empty")
	}
	// Paths from the paper: Table 1 path 0/1 is the second ProjClause.
	n3 := MustParse("SELECT cty, sales FROM T WHERE cty = 'USA'")
	p, _ := ast.ParsePath("0/1")
	if got := n3.At(p); got == nil || got.Type != ast.TypeProjClause {
		t.Fatalf("At(0/1) = %v, want ProjClause", got)
	}
	p2, _ := ast.ParsePath("2/0/0/1")
	// 2=Where, 0=BiExpr, ... our Where wraps the expression, so 2/0 is
	// the BiExpr and 2/0/1 its string literal.
	p2 = ast.Path{ast.SlotWhere, 0, 1}
	if got := n3.At(p2); got == nil || got.Value() != "USA" {
		t.Fatalf("WHERE literal lookup failed: %v (path %v)", got, p2)
	}
	_ = p2
}

func TestHexLiteral(t *testing.T) {
	n := MustParse("SELECT * FROM SpecLineIndex WHERE specObjId = 0x400")
	lit := n.At(ast.Path{ast.SlotWhere, 0, 1})
	if lit == nil || lit.Type != ast.TypeNumExpr || lit.Attr("fmt") != "hex" {
		t.Fatalf("hex literal parsed wrong: %v", lit)
	}
	if ast.KindOf(lit) != ast.KindNumber {
		t.Fatal("hex literal should have number kind (paper Fig 6b maps it to a slider)")
	}
}

func TestTopClause(t *testing.T) {
	n := MustParse("SELECT TOP 10 a FROM t")
	lim := n.Child(ast.SlotLimit)
	if ast.IsEmptyClause(lim) || lim.Attr("kind") != "top" {
		t.Fatalf("TOP clause missing: %v", lim)
	}
	if v := lim.Child(0).Value(); v != "10" {
		t.Fatalf("TOP value = %q", v)
	}
	// LIMIT lands in the same slot, so TOP-add diffs stay path-stable.
	n2 := MustParse("SELECT a FROM t LIMIT 10")
	if n2.Child(ast.SlotLimit).Attr("kind") != "limit" {
		t.Fatal("LIMIT kind wrong")
	}
}

func TestTableFunction(t *testing.T) {
	n := MustParse("SELECT g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.8, 0.3, 2.0) as d")
	from := n.Child(ast.SlotFrom)
	if from.NumChildren() != 2 {
		t.Fatalf("FROM has %d items", from.NumChildren())
	}
	tf := from.Child(1).Child(0)
	if tf.Type != ast.TypeTabFunc {
		t.Fatalf("second FROM item is %s, want TabFunc", tf.Type)
	}
	if name := tf.Child(0).Value(); name != "dbo.fgetnearbyobjeq" {
		t.Fatalf("function name = %q", name)
	}
	if tf.NumChildren() != 4 { // name + 3 args
		t.Fatalf("TabFunc children = %d", tf.NumChildren())
	}
	if from.Child(1).Attr("alias") != "d" {
		t.Fatal("alias lost")
	}
}

func TestQualifiedColumn(t *testing.T) {
	n := MustParse("SELECT g.objID FROM Galaxy g")
	col := n.At(ast.Path{ast.SlotProject, 0, 0})
	if col.Type != ast.TypeColExpr || col.Value() != "objID" || col.Attr("table") != "g" {
		t.Fatalf("qualified column parsed wrong: %v", col)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	n := MustParse("SELECT * FROM (SELECT a FROM T WHERE b > 10)")
	sq := n.At(ast.Path{ast.SlotFrom, 0, 0})
	if sq.Type != ast.TypeSubQuery {
		t.Fatalf("FROM item is %s", sq.Type)
	}
	inner := sq.Child(0)
	if inner.Type != ast.TypeSelect || len(inner.Children) != ast.NumSlots {
		t.Fatal("inner select malformed")
	}
}

func TestParseMany(t *testing.T) {
	stmts, err := ParseMany("SELECT a FROM t; SELECT b FROM u;\n-- comment\nSELECT c FROM v")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	q := "SELECT /* block\ncomment */ a -- trailing\nFROM t"
	n, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := ast.SQL(n); !strings.Contains(got, "FROM t") {
		t.Fatalf("rendered: %q", got)
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Parse("SELECT a FROM t WHERE x ==")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Pos <= 0 {
		t.Fatalf("error position %d", perr.Pos)
	}
}
