package sqlparser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
)

// TestParserNeverPanics feeds the parser random byte soup, random token
// soup, and truncations of valid queries. Errors are fine; panics are
// not.
func TestParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))

	// Random bytes.
	for i := 0; i < 500; i++ {
		n := r.Intn(60)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(r.Intn(256))
		}
		mustNotPanic(t, string(b))
	}

	// Random SQL-ish token soup.
	tokens := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
		"LIMIT", "TOP", "JOIN", "ON", "AND", "OR", "NOT", "IN",
		"BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "AS",
		"(", ")", ",", "*", "=", "<", ">", "<=", ">=", "<>", "+", "-",
		"/", "%", "'str'", "42", "0x1f", "tbl", "col", "x.y", ";",
	}
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(25)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(tokens[r.Intn(len(tokens))])
			sb.WriteByte(' ')
		}
		mustNotPanic(t, sb.String())
	}

	// Truncations of a valid query at every byte offset.
	valid := "SELECT TOP 3 a, SUM(b) FROM t JOIN u ON t.x = u.y WHERE c IN (1, 2) AND d BETWEEN 0x1 AND 9 GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC"
	for i := 0; i <= len(valid); i++ {
		mustNotPanic(t, valid[:i])
	}
}

func mustNotPanic(t *testing.T, sql string) {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			t.Fatalf("parser panicked on %q: %v", sql, rec)
		}
	}()
	n, err := Parse(sql)
	if err == nil && n != nil {
		// Whatever parsed must render and re-parse (full round trip).
		rendered := ast.SQL(n)
		if _, err2 := Parse(rendered); err2 != nil {
			t.Fatalf("accepted %q but cannot reparse its rendering %q: %v", sql, rendered, err2)
		}
	}
}

// TestGeneratedQueriesRoundTrip builds random queries from a canonical
// grammar and checks parse(SQL(parse(q))) == parse(q) at scale.
func TestGeneratedQueriesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for i := 0; i < 2000; i++ {
		q := randomQuery(r)
		first, err := Parse(q)
		if err != nil {
			t.Fatalf("generated query does not parse: %q: %v", q, err)
		}
		second, err := Parse(ast.SQL(first))
		if err != nil {
			t.Fatalf("rendering of %q does not parse: %q: %v", q, ast.SQL(first), err)
		}
		if !ast.Equal(first, second) {
			t.Fatalf("round trip changed:\nq: %s\nrendered: %s", q, ast.SQL(first))
		}
	}
}

// randomQuery emits a random member of the supported SQL subset.
func randomQuery(r *rand.Rand) string {
	cols := []string{"a", "b", "c", "dest", "delay"}
	tabs := []string{"t", "u", "ontime", "Galaxy"}
	col := func() string { return cols[r.Intn(len(cols))] }
	tab := func() string { return tabs[r.Intn(len(tabs))] }
	lit := func() string {
		switch r.Intn(4) {
		case 0:
			return "'s" + string(rune('a'+r.Intn(26))) + "'"
		case 1:
			return "0x" + string(rune('1'+r.Intn(9)))
		default:
			return string(rune('0' + r.Intn(10)))
		}
	}
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth > 2 {
			return col()
		}
		switch r.Intn(8) {
		case 0:
			return col() + " = " + lit()
		case 1:
			return "(" + expr(depth+1) + " AND " + expr(depth+1) + ")"
		case 2:
			return col() + " BETWEEN 1 AND 9"
		case 3:
			return col() + " IN (" + lit() + ", " + lit() + ")"
		case 4:
			return "SUM(" + col() + ") > " + lit()
		case 5:
			return "CASE WHEN " + col() + " > 1 THEN 'hi' ELSE 'lo' END = 'hi'"
		case 6:
			return "NOT " + col() + " IS NULL"
		default:
			return col() + " < " + col()
		}
	}
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if r.Intn(4) == 0 {
		sb.WriteString("DISTINCT ")
	}
	if r.Intn(4) == 0 {
		sb.WriteString("TOP 5 ")
	}
	nproj := 1 + r.Intn(3)
	for i := 0; i < nproj; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch r.Intn(4) {
		case 0:
			sb.WriteString("COUNT(" + col() + ")")
		case 1:
			sb.WriteString(col() + " AS x" + string(rune('0'+i)))
		default:
			sb.WriteString(col())
		}
	}
	sb.WriteString(" FROM " + tab())
	if r.Intn(3) == 0 {
		sb.WriteString(" JOIN " + tab() + " ON " + col() + " = " + col())
	}
	if r.Intn(2) == 0 {
		sb.WriteString(" WHERE " + expr(0))
	}
	if r.Intn(3) == 0 {
		sb.WriteString(" GROUP BY " + col())
		if r.Intn(2) == 0 {
			sb.WriteString(" HAVING COUNT(*) > 1")
		}
	}
	if r.Intn(3) == 0 {
		sb.WriteString(" ORDER BY " + col())
		if r.Intn(2) == 0 {
			sb.WriteString(" DESC")
		}
	}
	return sb.String()
}
