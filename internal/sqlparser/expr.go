package sqlparser

import (
	"strings"

	"repro/internal/ast"
)

// Expression grammar, loosest-binding first:
//
//	expr        = orExpr
//	orExpr      = andExpr (OR andExpr)*
//	andExpr     = notExpr (AND notExpr)*
//	notExpr     = NOT notExpr | cmpExpr
//	cmpExpr     = addExpr [cmpOp addExpr | [NOT] LIKE addExpr |
//	              IS [NOT] NULL | [NOT] IN (...) | [NOT] BETWEEN addExpr AND addExpr]
//	addExpr     = mulExpr ((+|-) mulExpr)*
//	mulExpr     = unaryExpr ((*|/|%) unaryExpr)*
//	unaryExpr   = - unaryExpr | primary
func (p *parser) parseExpr() (*ast.Node, *Error) { return p.parseOr() }

func (p *parser) parseOr() (*ast.Node, *Error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = ast.NewAttr(ast.TypeBiExpr, "op", "or", left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (*ast.Node, *Error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = ast.NewAttr(ast.TypeBiExpr, "op", "and", left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (*ast.Node, *Error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return ast.NewAttr(ast.TypeUniExpr, "op", "not", e), nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (*ast.Node, *Error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch {
	case t.kind == tokOp && isCmpOp(t.text):
		p.advance()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return ast.NewAttr(ast.TypeBiExpr, "op", t.text, left, right), nil
	case t.kind == tokKeyword && t.text == "like":
		p.advance()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return ast.NewAttr(ast.TypeBiExpr, "op", "like", left, right), nil
	case t.kind == tokKeyword && t.text == "is":
		p.advance()
		op := "is"
		if p.acceptKeyword("not") {
			op = "is not"
		}
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return ast.NewAttr(ast.TypeBiExpr, "op", op, left, ast.New(ast.TypeNullExpr)), nil
	case t.kind == tokKeyword && (t.text == "in" || t.text == "between" ||
		(t.text == "not" && isSetOp(p.peek2()))):
		neg := false
		if p.acceptKeyword("not") {
			neg = true
		}
		if p.acceptKeyword("between") {
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("and"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			b := ast.New(ast.TypeBetween, left, lo, hi)
			if neg {
				b.SetAttr("not", "true")
			}
			return b, nil
		}
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		in := ast.New(ast.TypeInExpr, left)
		if neg {
			in.SetAttr("not", "true")
		}
		if p.atKeyword("select") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			in.Children = append(in.Children, ast.New(ast.TypeSubQuery, sub))
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.Children = append(in.Children, e)
				if p.peek().kind != tokComma {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return in, nil
	}
	return left, nil
}

func isSetOp(t token) bool {
	return t.kind == tokKeyword && (t.text == "in" || t.text == "between" || t.text == "like")
}

func isCmpOp(op string) bool {
	switch op {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseAdditive() (*ast.Node, *Error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.advance().text
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = ast.NewAttr(ast.TypeBiExpr, "op", op, left, right)
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (*ast.Node, *Error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op string
		switch {
		case t.kind == tokStar:
			op = "*"
		case t.kind == tokOp && (t.text == "/" || t.text == "%"):
			op = t.text
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = ast.NewAttr(ast.TypeBiExpr, "op", op, left, right)
	}
}

func (p *parser) parseUnary() (*ast.Node, *Error) {
	if p.peek().kind == tokOp && p.peek().text == "-" {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return ast.NewAttr(ast.TypeUniExpr, "op", "-", e), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*ast.Node, *Error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		return ast.Leaf(ast.TypeNumExpr, t.text), nil
	case tokHexNumber:
		p.advance()
		n := ast.Leaf(ast.TypeNumExpr, t.text)
		n.SetAttr("fmt", "hex")
		return n, nil
	case tokString:
		p.advance()
		return ast.Leaf(ast.TypeStrExpr, t.text), nil
	case tokStar:
		p.advance()
		return ast.New(ast.TypeStarExpr), nil
	case tokLParen:
		p.advance()
		if p.atKeyword("select") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return ast.New(ast.TypeSubQuery, sub), nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return ast.New(ast.TypeParen, e), nil
	case tokKeyword:
		switch t.text {
		case "null":
			p.advance()
			return ast.New(ast.TypeNullExpr), nil
		case "true", "false":
			p.advance()
			return ast.Leaf(ast.TypeBoolExpr, t.text), nil
		case "cast":
			return p.parseCast()
		case "case":
			return p.parseCase()
		}
		return nil, p.errorf("unexpected keyword %s in expression", strings.ToUpper(t.text))
	case tokIdent:
		return p.parseIdentExpr()
	}
	return nil, p.errorf("unexpected %s in expression", t)
}

// parseCast parses CAST(expr [AS type]); the paper's ad-hoc log contains
// the non-standard single-argument form CAST(col).
func (p *parser) parseCast() (*ast.Node, *Error) {
	p.advance() // cast
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	c := ast.New(ast.TypeCastExpr, e)
	if p.acceptKeyword("as") {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		c.SetAttr("as", t.text)
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseCase() (*ast.Node, *Error) {
	p.advance() // case
	c := ast.New(ast.TypeCaseExpr)
	if !p.atKeyword("when") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Children = append(c.Children, operand)
	}
	for p.acceptKeyword("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Children = append(c.Children, ast.New(ast.TypeWhenClause, cond, res))
	}
	if p.acceptKeyword("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Children = append(c.Children, ast.New(ast.TypeElseClause, e))
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseIdentExpr parses a possibly qualified identifier followed
// optionally by a call argument list ("func(...)") or ".*".
func (p *parser) parseIdentExpr() (*ast.Node, *Error) {
	first := p.advance().text
	parts := []string{first}
	for p.peek().kind == tokDot {
		if p.peek2().kind == tokStar {
			p.advance()
			p.advance()
			return ast.NewAttr(ast.TypeStarExpr, "table", strings.Join(parts, ".")), nil
		}
		if p.peek2().kind != tokIdent {
			break
		}
		p.advance()
		parts = append(parts, p.advance().text)
	}
	if p.peek().kind == tokLParen {
		name := strings.ToLower(strings.Join(parts, "."))
		p.advance()
		fn := ast.New(ast.TypeFuncExpr, ast.Leaf(ast.TypeFuncName, name))
		if p.acceptKeyword("distinct") {
			fn.SetAttr("distinct", "true")
		}
		if p.peek().kind == tokRParen {
			p.advance()
			return fn, nil
		}
		for {
			var arg *ast.Node
			var err *Error
			if p.peek().kind == tokStar {
				p.advance()
				arg = ast.New(ast.TypeStarExpr)
			} else {
				arg, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			fn.Children = append(fn.Children, arg)
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return fn, nil
		}
	}
	col := ast.Leaf(ast.TypeColExpr, parts[len(parts)-1])
	if len(parts) > 1 {
		col.SetAttr("table", strings.Join(parts[:len(parts)-1], "."))
	}
	return col, nil
}
