// Package interaction builds the interaction graph of §4.2: queries are
// vertices, and each edge between a pair of queries is labeled with an
// interaction — the set of subtree transformations (diffs) sufficient to
// turn one query into the other. The miner applies the paper's two
// optimizations: sliding-window comparison (§6.1) and LCA pruning of
// ancestor transformations (§6.2).
package interaction

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/treediff"
)

// DiffRecord is a row of the paper's diffs table (Table 1): a subtree
// transformation between a specific pair of queries.
type DiffRecord struct {
	Q1, Q2 int // indices of the incident queries in the log
	treediff.Diff
	IsLeaf bool // leaf-d vs ancestor transformation
}

// String renders the record like a Table 1 row.
func (d DiffRecord) String() string {
	return fmt.Sprintf("d{q%d->q%d %s}", d.Q1, d.Q2, d.Diff.String())
}

// Edge is a labeled edge of the interaction graph: the interaction
// t ⊆ diffs that transforms Q1 into Q2.
type Edge struct {
	Q1, Q2 int
	Diffs  []DiffRecord
}

// Graph is the interaction graph G = (V, E).
type Graph struct {
	// Queries are the vertices, parsed ASTs in log order.
	Queries []*ast.Node
	// Edges connect compared query pairs; each edge's Diffs contain the
	// leaf transformations plus (pruned) ancestors for that pair.
	Edges []Edge
}

// Diffs returns all diff records across all edges (the diffs table).
func (g *Graph) Diffs() []DiffRecord {
	var out []DiffRecord
	for _, e := range g.Edges {
		out = append(out, e.Diffs...)
	}
	return out
}

// NumDiffs counts diff records without materializing them.
func (g *Graph) NumDiffs() int {
	n := 0
	for _, e := range g.Edges {
		n += len(e.Diffs)
	}
	return n
}

// Options configure the miner.
type Options struct {
	// WindowSize bounds how far apart two queries may be in the log to
	// be compared (§6.1). 0 or negative means all pairs (O(|Q|²)).
	WindowSize int
	// LCAPrune enables least-common-ancestor pruning of ancestor
	// transformations (§6.2).
	LCAPrune bool
}

// DefaultOptions are the paper's recommended settings: window of 2 with
// LCA pruning, which Appendix B shows preserves the output interface
// while reducing runtime by orders of magnitude.
func DefaultOptions() Options { return Options{WindowSize: 2, LCAPrune: true} }

// Stats reports the miner's work, matching the quantities plotted in
// Figures 11 and 12 (edge counts and mining time are reported by the
// caller via wall-clock around Mine).
type Stats struct {
	Comparisons int
	Edges       int
	DiffRecords int
}

// Differ computes the pairwise subtree transformations the miner is
// built on. The zero-state stdDiffer calls treediff directly; a
// *treediff.Comparer memoizes repeated pairs, which an incremental
// miner revisits on every fallback re-mine.
type Differ interface {
	Compare(left, right *ast.Node) treediff.Result
	CompareLCA(left, right *ast.Node) treediff.Result
}

type stdDiffer struct{}

func (stdDiffer) Compare(l, r *ast.Node) treediff.Result    { return treediff.Compare(l, r) }
func (stdDiffer) CompareLCA(l, r *ast.Node) treediff.Result { return treediff.CompareLCA(l, r) }

// Mine parses nothing — it takes already-parsed ASTs (one per log entry,
// in log order) and builds the interaction graph.
func Mine(queries []*ast.Node, opts Options) (*Graph, Stats) {
	return MineWith(queries, opts, nil)
}

// MineWith is Mine with an explicit differ (nil = plain treediff).
func MineWith(queries []*ast.Node, opts Options, d Differ) (*Graph, Stats) {
	g := &Graph{}
	st := MineAppend(g, queries, opts, d)
	return g, st
}

// MineAppend grows an existing graph in place: the new queries become
// vertices, and exactly the comparisons batch mining would have added
// for them are performed — pairs (i, j) with j in the appended range
// and i inside the sliding window (every i < j when WindowSize <= 0).
// Appending K entries therefore costs O(K·w) comparisons instead of the
// O(n·w) full re-mine, and a graph grown by repeated MineAppend calls
// is structurally identical to batch-mining the whole log. The returned
// stats cover only this append.
func MineAppend(g *Graph, newQueries []*ast.Node, opts Options, d Differ) Stats {
	if d == nil {
		d = stdDiffer{}
	}
	var st Stats
	base := len(g.Queries)
	g.Queries = append(g.Queries, newQueries...)
	win := opts.WindowSize
	for j := base; j < len(g.Queries); j++ {
		lo := 0
		if win > 0 {
			lo = j - win + 1
			if lo < 0 {
				lo = 0
			}
		}
		for i := lo; i < j; i++ {
			st.Comparisons++
			e, ok := compare(g.Queries, i, j, opts.LCAPrune, d)
			if !ok {
				continue
			}
			g.Edges = append(g.Edges, e)
			st.Edges++
			st.DiffRecords += len(e.Diffs)
		}
	}
	return st
}

func compare(queries []*ast.Node, i, j int, lca bool, d Differ) (Edge, bool) {
	var res treediff.Result
	if lca {
		res = d.CompareLCA(queries[i], queries[j])
	} else {
		res = d.Compare(queries[i], queries[j])
	}
	if len(res.Leaves) == 0 {
		return Edge{}, false // identical queries: no interaction needed
	}
	e := Edge{Q1: i, Q2: j}
	for _, d := range res.Leaves {
		e.Diffs = append(e.Diffs, DiffRecord{Q1: i, Q2: j, Diff: d, IsLeaf: true})
	}
	for _, d := range res.Ancestors {
		e.Diffs = append(e.Diffs, DiffRecord{Q1: i, Q2: j, Diff: d})
	}
	return e, true
}

// ConnectedFrom returns the set of vertex indices reachable from start
// following edges (in either direction) for which expressible returns
// true. This implements the paper's connectivity notion used to compute
// the interface closure with respect to the log (§4.4).
func (g *Graph) ConnectedFrom(start int, expressible func(Edge) bool) map[int]bool {
	adj := make(map[int][]int)
	for _, e := range g.Edges {
		if expressible(e) {
			adj[e.Q1] = append(adj[e.Q1], e.Q2)
			adj[e.Q2] = append(adj[e.Q2], e.Q1)
		}
	}
	seen := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}
