package interaction

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/sqlparser"
)

func parseAll(t *testing.T, sqls ...string) []*ast.Node {
	t.Helper()
	out := make([]*ast.Node, len(sqls))
	for i, s := range sqls {
		out[i] = sqlparser.MustParse(s)
	}
	return out
}

var sdssLike = []string{
	"SELECT * FROM SpecLineIndex WHERE specObjId = 0x400",
	"SELECT * FROM XCRedshift WHERE specObjId = 0x199",
	"SELECT * FROM SpecLineIndex WHERE specObjId = 0x3",
	"SELECT * FROM XCRedshift WHERE specObjId = 0x2a",
	"SELECT * FROM SpecLineIndex WHERE specObjId = 0x77",
	"SELECT * FROM SpecLineIndex WHERE specObjId = 0x78",
}

// TestWindowReducesComparisons pins §6.1: the sliding window reduces
// comparisons from O(|Q|²) to O(|Q|·n_win).
func TestWindowReducesComparisons(t *testing.T) {
	qs := parseAll(t, sdssLike...)
	_, full := Mine(qs, Options{WindowSize: 0})
	if full.Comparisons != 15 { // C(6,2)
		t.Fatalf("all-pairs comparisons = %d, want 15", full.Comparisons)
	}
	_, win := Mine(qs, Options{WindowSize: 2})
	if win.Comparisons != 5 {
		t.Fatalf("window=2 comparisons = %d, want 5", win.Comparisons)
	}
	_, win3 := Mine(qs, Options{WindowSize: 3})
	if win3.Comparisons != 9 { // 4*2 + 1
		t.Fatalf("window=3 comparisons = %d, want 9", win3.Comparisons)
	}
}

// TestLCAPruneShrinksGraph pins §6.2/Fig 11: pruning reduces diff
// records without touching leaf diffs.
func TestLCAPruneShrinksGraph(t *testing.T) {
	qs := parseAll(t, sdssLike...)
	gFull, _ := Mine(qs, Options{WindowSize: 0, LCAPrune: false})
	gLCA, _ := Mine(qs, Options{WindowSize: 0, LCAPrune: true})
	if gLCA.NumDiffs() >= gFull.NumDiffs() {
		t.Fatalf("LCA pruning did not shrink: %d vs %d", gLCA.NumDiffs(), gFull.NumDiffs())
	}
	leaves := func(g *Graph) int {
		n := 0
		for _, d := range g.Diffs() {
			if d.IsLeaf {
				n++
			}
		}
		return n
	}
	if leaves(gFull) != leaves(gLCA) {
		t.Fatalf("pruning must preserve leaf diffs: %d vs %d", leaves(gFull), leaves(gLCA))
	}
}

func TestIdenticalQueriesNoEdge(t *testing.T) {
	qs := parseAll(t, "SELECT a FROM t", "SELECT a FROM t", "SELECT a FROM t")
	g, st := Mine(qs, Options{WindowSize: 0})
	if len(g.Edges) != 0 || st.Edges != 0 {
		t.Fatalf("identical queries should produce no edges, got %d", len(g.Edges))
	}
}

func TestEdgeEndpointsAndLeafFlags(t *testing.T) {
	qs := parseAll(t, sdssLike[:3]...)
	g, _ := Mine(qs, Options{WindowSize: 0})
	if len(g.Edges) != 3 {
		t.Fatalf("edges = %d, want 3", len(g.Edges))
	}
	for _, e := range g.Edges {
		if e.Q1 >= e.Q2 || e.Q2 >= len(qs) {
			t.Fatalf("bad edge endpoints %d -> %d", e.Q1, e.Q2)
		}
		hasLeaf := false
		for _, d := range e.Diffs {
			if d.Q1 != e.Q1 || d.Q2 != e.Q2 {
				t.Fatalf("diff endpoints %d->%d disagree with edge %d->%d", d.Q1, d.Q2, e.Q1, e.Q2)
			}
			if d.IsLeaf {
				hasLeaf = true
			}
		}
		if !hasLeaf {
			t.Fatal("every edge must carry at least one leaf diff")
		}
	}
}

func TestConnectedFrom(t *testing.T) {
	qs := parseAll(t,
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2",
		"SELECT zzz FROM other_table GROUP BY q1, q2", // unrelated island with window=2? still compared
	)
	g, _ := Mine(qs, Options{WindowSize: 2})
	// All edges expressible: everything reachable.
	all := g.ConnectedFrom(0, func(Edge) bool { return true })
	if len(all) != 3 {
		t.Fatalf("reachable = %d, want 3", len(all))
	}
	// No edges expressible: only the start.
	none := g.ConnectedFrom(0, func(Edge) bool { return false })
	if len(none) != 1 || !none[0] {
		t.Fatalf("reachable = %v, want only vertex 0", none)
	}
	// Only single-diff edges expressible: q0-q1 qualifies (one literal
	// change), q1-q2 does not.
	some := g.ConnectedFrom(0, func(e Edge) bool {
		leaves := 0
		for _, d := range e.Diffs {
			if d.IsLeaf {
				leaves++
			}
		}
		return leaves == 1
	})
	if !some[1] || some[2] {
		t.Fatalf("reachable = %v, want {0,1}", some)
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.WindowSize != 2 || !o.LCAPrune {
		t.Fatalf("defaults = %+v", o)
	}
}
