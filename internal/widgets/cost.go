package widgets

import (
	"fmt"
	"math"
)

// CostFunc is the paper's cost model (§4.3): a low-dimensional
// polynomial c(n) = a0 + a1·n + a2·n², monotonically increasing in the
// domain size n, measured in milliseconds of expected interaction time.
type CostFunc struct {
	A0, A1, A2 float64
}

// Eval returns the cost for a domain of size n.
func (c CostFunc) Eval(n int) float64 {
	fn := float64(n)
	return c.A0 + c.A1*fn + c.A2*fn*fn
}

// String renders the polynomial like Example 4.4.
func (c CostFunc) String() string {
	return fmt.Sprintf("%.0f + %.2f*n + %.3f*n^2", c.A0, c.A1, c.A2)
}

// TimingTrace is one observation: the measured interaction time (ms)
// for a widget instantiated with a given domain size. The paper collects
// these by instrumenting widget interactions; we synthesize them (see
// SynthesizeTraces) and fit the same quadratic.
type TimingTrace struct {
	DomainSize int
	Millis     float64
}

// FitCost fits c(n) = a0 + a1·n + a2·n² to timing traces by ordinary
// least squares on the monomial basis {1, n, n²}, then clamps negative
// coefficients to zero (the paper requires ai ≥ 0). It solves the 3×3
// normal equations directly.
func FitCost(traces []TimingTrace) (CostFunc, error) {
	if len(traces) < 3 {
		return CostFunc{}, fmt.Errorf("widgets: need at least 3 traces, have %d", len(traces))
	}
	// Normal equations: (XᵀX) a = Xᵀy with X rows (1, n, n²).
	var m [3][3]float64
	var v [3]float64
	for _, t := range traces {
		n := float64(t.DomainSize)
		x := [3]float64{1, n, n * n}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += x[i] * x[j]
			}
			v[i] += x[i] * t.Millis
		}
	}
	a, ok := solve3(m, v)
	if !ok {
		// Degenerate design (e.g. all traces at one size): fall back to
		// a constant at the mean.
		mean := 0.0
		for _, t := range traces {
			mean += t.Millis
		}
		return CostFunc{A0: mean / float64(len(traces))}, nil
	}
	for i := range a {
		if a[i] <= 0 { // also normalizes IEEE negative zero
			a[i] = 0
		}
	}
	return CostFunc{A0: a[0], A1: a[1], A2: a[2]}, nil
}

// solve3 solves a 3×3 linear system by Gaussian elimination with
// partial pivoting; ok is false when the matrix is singular.
func solve3(m [3][3]float64, v [3]float64) ([3]float64, bool) {
	var a [3][4]float64
	for i := 0; i < 3; i++ {
		copy(a[i][:3], m[i][:])
		a[i][3] = v[i]
	}
	for col := 0; col < 3; col++ {
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-12 {
			return [3]float64{}, false
		}
		a[col], a[p] = a[p], a[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var out [3]float64
	for i := 0; i < 3; i++ {
		out[i] = a[i][3] / a[i][i]
	}
	return out, true
}

// SynthesizeTraces generates deterministic timing traces for a widget
// type from a Fitts-style interaction latency model: a fixed pointing/
// acquisition time plus a per-option visual scan term and a quadratic
// crowding term. It stands in for the paper's instrumented traces; the
// default library nevertheless ships the paper's published constants so
// widget selection matches the paper exactly.
func SynthesizeTraces(base, scan, crowd float64, sizes []int, repeats int) []TimingTrace {
	var out []TimingTrace
	// Deterministic small perturbation so the fit is non-trivial but
	// reproducible (no global RNG: experiments must be replayable).
	noise := []float64{-0.03, 0.01, 0.04, -0.02, 0.0}
	for _, n := range sizes {
		for r := 0; r < repeats; r++ {
			truth := base + scan*float64(n) + crowd*float64(n)*float64(n)
			jitter := 1 + noise[(n+r)%len(noise)]
			out = append(out, TimingTrace{DomainSize: n, Millis: truth * jitter})
		}
	}
	return out
}
