// Package widgets implements the interaction-widget model of §4.3: a
// widget type is a constraint rule plus a cost function; a widget
// instance is a path in the AST plus a domain of subtrees it can swap in
// at that path. The library contains the nine HTML widget types used in
// the paper's experiments, with the published cost-function constants as
// defaults and a trace-fitting procedure to re-derive them.
package widgets

import (
	"strconv"
	"strings"

	"repro/internal/ast"
)

// Domain is the set of subtrees a widget can express at its path. It is
// initialized from a subset of the diffs table and, for numeric domains
// used by sliders, extrapolates to the full [Min, Max] range (§4.3:
// "its domain will be extrapolated as the range [1, 100]").
type Domain struct {
	set  *ast.Set
	kind ast.Kind

	hasNil bool // contains the "absent" option (added/removed subtree)

	numeric  bool // all non-nil values are numeric terminals
	allColl  bool // all values are collection nodes (checkbox lists)
	numCount int
	min, max float64
}

// NewDomain returns an empty domain.
func NewDomain() *Domain {
	return &Domain{set: ast.NewSet(), kind: ast.KindNumber, numeric: true, allColl: true}
}

// Add inserts a subtree (nil allowed: the absent option). It updates the
// domain's kind: number if all members are numeric terminals, string if
// all are string-castable terminals, tree otherwise.
func (d *Domain) Add(n *ast.Node) {
	if !d.set.Add(n) {
		return
	}
	if n == nil {
		d.hasNil = true
		d.kind = ast.KindTree
		d.numeric = false
		d.allColl = false
		return
	}
	if !ast.IsCollection(n.Type) {
		d.allColl = false
	}
	k := ast.KindOf(n)
	switch k {
	case ast.KindNumber:
		if v, ok := NumericValue(n); ok {
			d.numCount++
			if d.numCount == 1 {
				d.min, d.max = v, v
			} else {
				if v < d.min {
					d.min = v
				}
				if v > d.max {
					d.max = v
				}
			}
		} else {
			d.numeric = false
		}
	default:
		d.numeric = false
	}
	// Kind lattice: number ⊂ string ⊂ tree.
	if d.kind == ast.KindNumber && k != ast.KindNumber {
		if k == ast.KindString {
			d.kind = ast.KindString
		} else {
			d.kind = ast.KindTree
		}
	} else if d.kind == ast.KindString && k == ast.KindTree {
		d.kind = ast.KindTree
	}
}

// Kind returns the primitive kind of the whole domain.
func (d *Domain) Kind() ast.Kind { return d.kind }

// Len returns the number of distinct options (|w.d|).
func (d *Domain) Len() int { return d.set.Len() }

// IsNumericRange reports whether the domain consists solely of numeric
// terminals so that a slider may extrapolate it to [Min, Max].
func (d *Domain) IsNumericRange() bool { return d.numeric && !d.hasNil && d.set.Len() > 0 }

// Range returns the extrapolated numeric bounds (valid only when
// IsNumericRange).
func (d *Domain) Range() (min, max float64) { return d.min, d.max }

// HasAbsent reports whether the domain includes the absent option.
func (d *Domain) HasAbsent() bool { return d.hasNil }

// AllCollections reports whether every member is a collection node
// (Project, GroupBy, ...) — the acceptance rule of checkbox lists.
// Tracked incrementally so widget-rule checks do not have to
// materialize (and sort) the domain's values.
func (d *Domain) AllCollections() bool { return d.allColl && !d.hasNil && d.set.Len() > 0 }

// Contains reports whether the domain can express the subtree: exact
// structural membership, or numeric-range membership for extrapolated
// numeric domains.
func (d *Domain) Contains(n *ast.Node) bool {
	if d.set.Contains(n) {
		return true
	}
	if n != nil && d.IsNumericRange() {
		if v, ok := NumericValue(n); ok {
			return v >= d.min && v <= d.max
		}
	}
	return false
}

// Values returns the distinct member subtrees in deterministic order.
func (d *Domain) Values() []*ast.Node { return d.set.Values() }

// NumericValue parses the numeric value of a NumExpr terminal,
// supporting both decimal and the SDSS logs' 0x hex object ids.
func NumericValue(n *ast.Node) (float64, bool) {
	if n == nil || n.Type != ast.TypeNumExpr {
		return 0, false
	}
	v := n.Value()
	if n.Attr("fmt") == "hex" || strings.HasPrefix(v, "0x") || strings.HasPrefix(v, "0X") {
		u, err := strconv.ParseUint(strings.TrimPrefix(strings.TrimPrefix(v, "0x"), "0X"), 16, 64)
		if err != nil {
			return 0, false
		}
		return float64(u), true
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}
