package widgets

import (
	"repro/internal/ast"
)

// Type is a widget type WT = (r, c): a constraint rule and a cost
// function (§4.3). Name identifies the HTML control; Kind is the
// primitive kind the control natively accepts (domains of castable
// kinds are accepted too: numbers cast to strings, anything to trees).
type Type struct {
	Name    string
	Kind    ast.Kind
	Cost    CostFunc
	MaxOpts int  // 0 = unbounded; e.g. a toggle accepts at most 2 options
	Numeric bool // requires an extrapolatable numeric domain (sliders)
	// CollectionOnly restricts the widget to domains whose members are
	// all collection nodes (Project, GroupBy, ...), the natural targets
	// of checkbox lists (§4.1 collection annotation).
	CollectionOnly bool
}

// Accepts implements the widget rule r_WT(w.d): it checks that every
// subtree in the domain is of a type the widget can express.
func (t *Type) Accepts(d *Domain) bool {
	if d.Len() == 0 {
		return false
	}
	if t.MaxOpts > 0 && d.Len() > t.MaxOpts {
		return false
	}
	if t.Numeric && !d.IsNumericRange() {
		return false
	}
	if t.CollectionOnly && !d.AllCollections() {
		return false
	}
	return d.Kind().CastableTo(t.Kind)
}

// The nine widget types of §7 ("We defined 9 HTML widget types natively
// supported in modern browsers"). Cost constants follow Example 4.4
// where published (drop-down, textbox); the rest are fitted from the
// same synthetic-trace procedure and chosen so the orderings reproduce
// the paper's widget selections:
//
//   - toggle/checkbox are cheapest for 2-option domains (Figure 5d);
//   - radio beats splitting into two drop-downs at 3 whole-query
//     options but loses at 10 (Figures 5b/5c);
//   - slider is preferred for numeric domains of any size (Figure 6b);
//   - textbox is a constant and wins over drop-down for very large
//     string domains;
//   - drag-and-drop is the generic tree fallback; checkbox-list applies
//     to collection nodes (Project, GroupBy, ...).
var (
	Textbox = &Type{Name: "textbox", Kind: ast.KindString,
		Cost: CostFunc{A0: 4790}}
	ToggleButton = &Type{Name: "toggle-button", Kind: ast.KindTree,
		Cost: CostFunc{A0: 250, A1: 50}, MaxOpts: 2}
	Checkbox = &Type{Name: "checkbox", Kind: ast.KindTree,
		Cost: CostFunc{A0: 260, A1: 55}, MaxOpts: 2}
	RadioButton = &Type{Name: "radio-button", Kind: ast.KindTree,
		Cost: CostFunc{A0: 200, A1: 160, A2: 0.1}, MaxOpts: 4}
	Dropdown = &Type{Name: "drop-down", Kind: ast.KindString,
		Cost: CostFunc{A0: 276, A1: 125, A2: 0.07}}
	Slider = &Type{Name: "slider", Kind: ast.KindNumber,
		Cost: CostFunc{A0: 320, A1: 10}, Numeric: true}
	RangeSlider = &Type{Name: "range-slider", Kind: ast.KindNumber,
		Cost: CostFunc{A0: 600, A1: 12}, Numeric: true}
	CheckboxList = &Type{Name: "checkbox-list", Kind: ast.KindTree,
		Cost: CostFunc{A0: 350, A1: 150, A2: 5.0}, CollectionOnly: true}
	// The quadratic term matters: scanning many large subtree options is
	// superlinearly painful, which is what stops the merge phase from
	// collapsing a heterogeneous multi-client log into one giant
	// whole-query selector (§7.2.3).
	DragDrop = &Type{Name: "drag-and-drop", Kind: ast.KindTree,
		Cost: CostFunc{A0: 500, A1: 140, A2: 10.0}}
)

// Library is an ordered list of widget types; order breaks cost ties
// deterministically (earlier wins).
type Library []*Type

// DefaultLibrary returns the nine-type library with the paper-default
// cost constants.
func DefaultLibrary() Library {
	return Library{
		ToggleButton, Checkbox, Slider, RangeSlider, RadioButton,
		Dropdown, CheckboxList, DragDrop, Textbox,
	}
}

// Widget is an instantiated widget w: a widget type bound to a path in
// the AST and a domain of subtrees it can swap in at that path (§4.3).
type Widget struct {
	Type   *Type
	Path   ast.Path
	Domain *Domain
	// Label is a human-readable caption filled by the interface editor.
	Label string
}

// Cost is c_WT(w.d).
func (w *Widget) Cost() float64 { return w.Type.Cost.Eval(w.Domain.Len()) }

// Expresses reports whether the widget expresses the transformation of
// replacing the subtree at path with sub (§4.3 "Widget Expressiveness"):
// the widget's path must equal the transformation's path and the target
// subtree must be in (or extrapolated by) the widget's domain.
func (w *Widget) Expresses(path ast.Path, sub *ast.Node) bool {
	return w.Path.Equal(path) && w.Domain.Contains(sub)
}

// Covers reports whether the widget can produce the given subtree of a
// target query: the widget path must be an ancestor-or-self of the
// change and the target's subtree at the widget path must be in the
// domain. Used by the closure computation.
func (w *Widget) Covers(target *ast.Node, changed ast.Path) bool {
	if !w.Path.IsPrefixOf(changed) {
		return false
	}
	return w.Domain.Contains(target.At(w.Path))
}

// Pick implements pickWidget (Algorithm 2): among the library types
// whose rules accept the domain, instantiate the one with minimal cost.
// It returns nil when no type accepts (cannot happen with the default
// library, which always has a tree-kind fallback).
func (l Library) Pick(path ast.Path, d *Domain) *Widget {
	var best *Type
	bestCost := 0.0
	for _, t := range l {
		if !t.Accepts(d) {
			continue
		}
		c := t.Cost.Eval(d.Len())
		if best == nil || c < bestCost {
			best, bestCost = t, c
		}
	}
	if best == nil {
		return nil
	}
	return &Widget{Type: best, Path: path.Clone(), Domain: d}
}
