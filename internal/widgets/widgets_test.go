package widgets

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

func numDomain(vals ...string) *Domain {
	d := NewDomain()
	for _, v := range vals {
		d.Add(ast.Leaf(ast.TypeNumExpr, v))
	}
	return d
}

func strDomain(vals ...string) *Domain {
	d := NewDomain()
	for _, v := range vals {
		d.Add(ast.Leaf(ast.TypeStrExpr, v))
	}
	return d
}

func treeDomain(n int) *Domain {
	d := NewDomain()
	for i := 0; i < n; i++ {
		d.Add(ast.NewAttr(ast.TypeBiExpr, "op", "=",
			ast.Leaf(ast.TypeColExpr, "x"),
			ast.Leaf(ast.TypeNumExpr, itoa(i))))
	}
	return d
}

func itoa(v int) string {
	s := ""
	for {
		s = string(rune('0'+v%10)) + s
		v /= 10
		if v == 0 {
			return s
		}
	}
}

func TestDomainKindLattice(t *testing.T) {
	d := NewDomain()
	d.Add(ast.Leaf(ast.TypeNumExpr, "1"))
	if d.Kind() != ast.KindNumber {
		t.Fatalf("pure numeric domain kind = %v", d.Kind())
	}
	d.Add(ast.Leaf(ast.TypeStrExpr, "x"))
	if d.Kind() != ast.KindString {
		t.Fatalf("mixed num/str domain kind = %v", d.Kind())
	}
	d.Add(ast.NewAttr(ast.TypeBiExpr, "op", "="))
	if d.Kind() != ast.KindTree {
		t.Fatalf("domain with tree member kind = %v", d.Kind())
	}
}

func TestDomainNumericExtrapolation(t *testing.T) {
	d := numDomain("1", "5", "100")
	if !d.IsNumericRange() {
		t.Fatal("numeric domain should extrapolate")
	}
	lo, hi := d.Range()
	if lo != 1 || hi != 100 {
		t.Fatalf("range = [%v, %v]", lo, hi)
	}
	// Example 4.3: the slider can express all values between 1 and 100,
	// even though w.D only contained three subtrees.
	if !d.Contains(ast.Leaf(ast.TypeNumExpr, "42")) {
		t.Fatal("42 should be in extrapolated range")
	}
	if d.Contains(ast.Leaf(ast.TypeNumExpr, "101")) {
		t.Fatal("101 is outside the range")
	}
	if d.Contains(ast.Leaf(ast.TypeStrExpr, "42")) {
		t.Fatal("string literal is not in a numeric domain")
	}
}

func TestDomainHexValues(t *testing.T) {
	h1 := ast.Leaf(ast.TypeNumExpr, "0x3")
	h1.SetAttr("fmt", "hex")
	h2 := ast.Leaf(ast.TypeNumExpr, "0x400")
	h2.SetAttr("fmt", "hex")
	d := NewDomain()
	d.Add(h1)
	d.Add(h2)
	if !d.IsNumericRange() {
		t.Fatal("hex ids should form a numeric range (SDSS slider, Fig 6b)")
	}
	lo, hi := d.Range()
	if lo != 3 || hi != 1024 {
		t.Fatalf("hex range = [%v, %v]", lo, hi)
	}
	mid := ast.Leaf(ast.TypeNumExpr, "0x199")
	mid.SetAttr("fmt", "hex")
	if !d.Contains(mid) {
		t.Fatal("0x199 should be inside [0x3, 0x400]")
	}
}

func TestDomainAbsentOption(t *testing.T) {
	d := NewDomain()
	d.Add(nil)
	d.Add(ast.NewAttr(ast.TypeLimit, "kind", "top", ast.Leaf(ast.TypeNumExpr, "1")))
	if d.Len() != 2 || !d.HasAbsent() {
		t.Fatalf("len=%d hasAbsent=%v", d.Len(), d.HasAbsent())
	}
	if d.IsNumericRange() {
		t.Fatal("domain with absent option cannot be a numeric range")
	}
	if !d.Contains(nil) {
		t.Fatal("absent option must be containable")
	}
}

func TestDomainDeduplicates(t *testing.T) {
	d := strDomain("a", "a", "b", "a")
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

// TestPickSelections pins the widget-type selections that the paper's
// figures depend on.
func TestPickSelections(t *testing.T) {
	lib := DefaultLibrary()
	p := ast.Path{0}
	cases := []struct {
		name string
		dom  *Domain
		want string
	}{
		{"2 trees -> toggle (Fig 5d TOP presence)", treeDomain(2), "toggle-button"},
		{"3 whole queries -> radio (Fig 5b)", treeDomain(3), "radio-button"},
		{"10 trees -> drag-and-drop fallback", treeDomain(10), "drag-and-drop"},
		{"2 numbers -> slider (Fig 5e predicate)", numDomain("10", "20"), "slider"},
		{"3 numbers -> slider (Fig 5a)", numDomain("1", "5", "100"), "slider"},
		{"3 strings -> drop-down (Fig 5a customers)", strDomain("Alice", "Bob", "Carol"), "drop-down"},
		{"2 strings -> toggle", strDomain("USA", "EUR"), "toggle-button"},
	}
	for _, c := range cases {
		w := lib.Pick(p, c.dom)
		if w == nil {
			t.Errorf("%s: no widget picked", c.name)
			continue
		}
		if w.Type.Name != c.want {
			t.Errorf("%s: picked %s, want %s", c.name, w.Type.Name, c.want)
		}
	}
}

// TestTextboxCrossover: per Example 4.4, the drop-down is cheaper for
// small string domains but the constant-cost textbox wins for large
// ones ("as the domain increases ... it is easier to simply use the
// textbox").
func TestTextboxCrossover(t *testing.T) {
	lib := DefaultLibrary()
	small := strDomain("a", "b", "c")
	if w := lib.Pick(ast.Path{0}, small); w.Type.Name != "drop-down" {
		t.Fatalf("small string domain picked %s", w.Type.Name)
	}
	big := NewDomain()
	for i := 0; i < 60; i++ {
		big.Add(ast.Leaf(ast.TypeStrExpr, "name"+itoa(i)))
	}
	if w := lib.Pick(ast.Path{0}, big); w.Type.Name != "textbox" {
		t.Fatalf("large string domain picked %s, want textbox", w.Type.Name)
	}
	// The published crossover: c_dropdown(n) > 4790 around n ≈ 33.
	if Dropdown.Cost.Eval(30) > Textbox.Cost.Eval(30) {
		t.Fatal("drop-down should still win at n=30")
	}
	if Dropdown.Cost.Eval(40) < Textbox.Cost.Eval(40) {
		t.Fatal("textbox should win at n=40")
	}
}

// TestPaperCostConstants pins Example 4.4's published constants.
func TestPaperCostConstants(t *testing.T) {
	if Dropdown.Cost.A0 != 276 || Dropdown.Cost.A1 != 125 || Dropdown.Cost.A2 != 0.07 {
		t.Fatalf("drop-down constants changed: %v", Dropdown.Cost)
	}
	if Textbox.Cost.A0 != 4790 || Textbox.Cost.A1 != 0 || Textbox.Cost.A2 != 0 {
		t.Fatalf("textbox constants changed: %v", Textbox.Cost)
	}
	if got := Dropdown.Cost.Eval(10); math.Abs(got-(276+1250+7)) > 1e-9 {
		t.Fatalf("c_dropdown(10) = %v", got)
	}
}

func TestCollectionOnlyRule(t *testing.T) {
	proj := NewDomain()
	proj.Add(ast.New(ast.TypeProject, ast.New(ast.TypeProjClause, ast.Leaf(ast.TypeColExpr, "a"))))
	proj.Add(ast.New(ast.TypeProject, ast.New(ast.TypeProjClause, ast.Leaf(ast.TypeColExpr, "b"))))
	if !CheckboxList.Accepts(proj) {
		t.Fatal("checkbox-list should accept Project-node domains")
	}
	if CheckboxList.Accepts(treeDomain(3)) {
		t.Fatal("checkbox-list must reject non-collection trees")
	}
	// For a 5-option Project domain (radio caps at 4) the checkbox-list
	// should beat the drag-and-drop fallback.
	for _, c := range []string{"c", "d", "e"} {
		proj.Add(ast.New(ast.TypeProject, ast.New(ast.TypeProjClause, ast.Leaf(ast.TypeColExpr, c))))
	}
	w := DefaultLibrary().Pick(ast.Path{0}, proj)
	if w.Type.Name != "checkbox-list" {
		t.Fatalf("picked %s for 5-option collection domain", w.Type.Name)
	}
}

func TestSliderRequiresNumericRange(t *testing.T) {
	if Slider.Accepts(strDomain("a", "b")) {
		t.Fatal("slider must reject string domains")
	}
	mixed := NewDomain()
	mixed.Add(ast.Leaf(ast.TypeNumExpr, "1"))
	mixed.Add(nil)
	if Slider.Accepts(mixed) {
		t.Fatal("slider must reject domains with the absent option")
	}
}

func TestFitCostRecoversPolynomial(t *testing.T) {
	truth := CostFunc{A0: 276, A1: 125, A2: 0.07}
	var traces []TimingTrace
	for _, n := range []int{2, 3, 5, 8, 13, 21, 34} {
		traces = append(traces, TimingTrace{DomainSize: n, Millis: truth.Eval(n)})
	}
	got, err := FitCost(traces)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A0-truth.A0) > 1 || math.Abs(got.A1-truth.A1) > 1 || math.Abs(got.A2-truth.A2) > 0.1 {
		t.Fatalf("fit = %v, truth = %v", got, truth)
	}
}

func TestFitCostOnSynthesizedTraces(t *testing.T) {
	traces := SynthesizeTraces(300, 120, 0.1, []int{2, 4, 8, 16, 32}, 5)
	c, err := FitCost(traces)
	if err != nil {
		t.Fatal(err)
	}
	// Coefficients should be non-negative and in the right ballpark.
	if c.A0 < 0 || c.A1 < 0 || c.A2 < 0 {
		t.Fatalf("negative coefficients: %v", c)
	}
	if c.Eval(10) < c.Eval(2) {
		t.Fatal("fitted cost must be monotone in domain size")
	}
}

func TestFitCostDegenerate(t *testing.T) {
	if _, err := FitCost([]TimingTrace{{2, 100}}); err == nil {
		t.Fatal("too few traces must error")
	}
	// All traces at one size: singular design, constant fallback.
	c, err := FitCost([]TimingTrace{{3, 100}, {3, 110}, {3, 90}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Eval(3)-100) > 1e-6 {
		t.Fatalf("constant fallback = %v", c)
	}
}

// Property: fitted costs are monotone non-decreasing in n for any
// monotone synthetic trace parameters.
func TestFitMonotoneProperty(t *testing.T) {
	f := func(b, s uint8) bool {
		base := 100 + float64(b)
		scan := 1 + float64(s)
		traces := SynthesizeTraces(base, scan, 0.05, []int{2, 4, 8, 16, 32}, 3)
		c, err := FitCost(traces)
		if err != nil {
			return false
		}
		prev := -math.MaxFloat64
		for n := 1; n <= 64; n *= 2 {
			v := c.Eval(n)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWidgetExpresses(t *testing.T) {
	lib := DefaultLibrary()
	p := ast.Path{2, 0, 1}
	w := lib.Pick(p, strDomain("USA", "EUR", "JPN"))
	if !w.Expresses(p, ast.Leaf(ast.TypeStrExpr, "EUR")) {
		t.Fatal("widget should express a domain member at its own path")
	}
	if w.Expresses(ast.Path{2, 0, 0}, ast.Leaf(ast.TypeStrExpr, "EUR")) {
		t.Fatal("different path must not be expressed")
	}
	if w.Expresses(p, ast.Leaf(ast.TypeStrExpr, "CHN")) {
		t.Fatal("non-member must not be expressed")
	}
}

// TestNineWidgetTypes pins the paper's library size: "We defined 9 HTML
// widget types natively supported in modern browsers".
func TestNineWidgetTypes(t *testing.T) {
	lib := DefaultLibrary()
	if len(lib) != 9 {
		t.Fatalf("library has %d types, the paper defines 9", len(lib))
	}
	names := map[string]bool{}
	for _, w := range lib {
		if names[w.Name] {
			t.Fatalf("duplicate widget type %q", w.Name)
		}
		names[w.Name] = true
	}
	for _, want := range []string{
		"textbox", "toggle-button", "checkbox", "radio-button",
		"drop-down", "slider", "range-slider", "checkbox-list",
		"drag-and-drop",
	} {
		if !names[want] {
			t.Errorf("missing widget type %q", want)
		}
	}
}

// TestCostMonotone: every library cost function is monotone
// non-decreasing in the domain size (the paper's requirement).
func TestCostMonotone(t *testing.T) {
	for _, w := range DefaultLibrary() {
		prev := -1.0
		for n := 1; n <= 128; n *= 2 {
			c := w.Cost.Eval(n)
			if c < prev {
				t.Errorf("%s cost not monotone at n=%d", w.Name, n)
			}
			prev = c
		}
	}
}

// TestAllCollectionsMatchesValuesLoop pins the CollectionOnly
// acceptance refactor: the incrementally tracked AllCollections flag
// must agree with the original Values()-materializing loop on every
// domain shape, including domains with the absent option (which
// Values() surfaces as a nil member).
func TestAllCollectionsMatchesValuesLoop(t *testing.T) {
	valuesLoop := func(d *Domain) bool {
		for _, v := range d.Values() {
			if v == nil || !ast.IsCollection(v.Type) {
				return false
			}
		}
		return d.Len() > 0
	}
	coll := func(col string) *ast.Node {
		g := &ast.Node{Type: ast.TypeGroupBy}
		g.Children = append(g.Children, ast.Leaf(ast.TypeColExpr, col))
		return g
	}
	cases := []struct {
		name string
		add  []*ast.Node
	}{
		{"collections only", []*ast.Node{coll("a"), coll("b")}},
		{"collection plus absent", []*ast.Node{coll("a"), nil}},
		{"mixed kinds", []*ast.Node{coll("a"), ast.Leaf(ast.TypeNumExpr, "1")}},
		{"scalar only", []*ast.Node{ast.Leaf(ast.TypeNumExpr, "1")}},
		{"empty", nil},
	}
	for _, c := range cases {
		d := NewDomain()
		for _, n := range c.add {
			d.Add(n)
		}
		if got, want := d.AllCollections(), valuesLoop(d); got != want {
			t.Errorf("%s: AllCollections=%v, values loop=%v", c.name, got, want)
		}
	}
}
