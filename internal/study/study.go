// Package study simulates the §7.4 user study. The paper recruited 40
// engineers; we cannot, so simulated participants complete the four
// SDSS tasks under both interfaces using the same fitted widget cost
// model (§4.3) that drives widget selection, plus an orientation cost
// proportional to interface complexity, an order-dependent learning
// effect, and the "write SQL" fallback for Task 1 on the SDSS form
// (which has no object-id widgets). The simulation reproduces the
// study's quantitative *shape*: Task 1 at the 60 s cap on the SDSS
// form vs ~10 s on Precision Interfaces, a small PI advantage on Tasks
// 2–4, identical accuracies for Tasks 2–4, and learning effects by
// order except for SDSS Task 1 (Figures 8c and 13).
package study

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/widgets"
)

// Condition is the interface a participant is assigned.
type Condition int

const (
	// PrecisionInterface is the generated task-specific interface.
	PrecisionInterface Condition = iota
	// SDSSForm is the (re-styled) SDSS search form baseline.
	SDSSForm
)

func (c Condition) String() string {
	if c == PrecisionInterface {
		return "precision-interfaces"
	}
	return "sdss-form"
}

// The four §7.4 tasks.
const (
	TaskObjectID  = 0 // find objects with an objectId
	TaskArea      = 1 // find objects in a certain area
	TaskColor     = 2 // find objects within a color range
	TaskRedshift  = 3 // find objects within a red-shift range
	NumTasks      = 4
	timeCapMillis = 60000 // the study capped each task at 60 s
)

// TaskNames are the display names used in figures.
var TaskNames = [NumTasks]string{"Task 1 (objectId)", "Task 2 (area)", "Task 3 (color)", "Task 4 (redshift)"}

// widgetUse describes one widget interaction a task requires: the
// widget type used and its domain size (cost model input).
type widgetUse struct {
	typ  *widgets.Type
	opts int
}

// interfaceModel describes one study condition: the number of visible
// widgets (orientation cost scales with it) and, per task, the widget
// interactions required — or none, meaning the user must hand-write SQL.
type interfaceModel struct {
	visibleWidgets int
	perTask        [NumTasks][]widgetUse
}

// formEntry models typing a short value into a form text box (~1.8 s).
// It is deliberately cheaper than the widget-selection textbox constant
// of Example 4.4, which prices *choosing among a large domain* via free
// text, not entering one known number.
var formEntry = &widgets.Type{Name: "textbox-entry", Kind: 0,
	Cost: widgets.CostFunc{A0: 1800}}

// piModel: the generated interface has one dedicated widget group per
// task (Figure 8b): a drop-down plus an id entry for object lookup, and
// paired range inputs for area/color/redshift.
var piModel = interfaceModel{
	visibleWidgets: 8,
	perTask: [NumTasks][]widgetUse{
		TaskObjectID: {{widgets.Dropdown, 3}, {formEntry, 1}},
		TaskArea:     {{widgets.Slider, 20}, {widgets.Slider, 20}},
		TaskColor:    {{widgets.Slider, 12}, {widgets.Slider, 12}},
		TaskRedshift: {{widgets.Slider, 16}, {widgets.Slider, 16}},
	},
}

// sdssModel: the search form exposes many general-purpose text boxes;
// tasks 2-4 are each two text entries; task 1 has no widgets at all
// (nil) and falls back to hand-written SQL.
var sdssModel = interfaceModel{
	visibleWidgets: 24,
	perTask: [NumTasks][]widgetUse{
		TaskObjectID: nil, // "users need to manually write queries"
		TaskArea:     {{formEntry, 1}, {formEntry, 1}},
		TaskColor:    {{formEntry, 1}, {formEntry, 1}},
		TaskRedshift: {{formEntry, 1}, {formEntry, 1}},
	},
}

// Observation is one (participant, task) measurement.
type Observation struct {
	Participant int
	Condition   Condition
	Task        int
	Order       int // 1-based position of the task in the participant's sequence
	Millis      float64
	Correct     bool
}

// Config tunes the simulation; Default matches the paper's setup.
type Config struct {
	Participants int   // total, split evenly between conditions
	Seed         int64 // deterministic
}

// DefaultConfig mirrors §7.4: 40 participants, random assignment.
func DefaultConfig() Config { return Config{Participants: 40, Seed: 2019} }

// Run simulates the study and returns all observations.
func Run(cfg Config) []Observation {
	r := rand.New(rand.NewSource(cfg.Seed))
	var out []Observation
	for p := 0; p < cfg.Participants; p++ {
		cond := PrecisionInterface
		if p%2 == 1 {
			cond = SDSSForm
		}
		order := r.Perm(NumTasks)
		for pos, task := range order {
			obs := simulateTask(r, cond, task, pos+1)
			obs.Participant = p
			out = append(out, obs)
		}
	}
	return out
}

// simulateTask models one task completion.
//
// time = comprehension + orientation·learning + Σ widget costs + submit
//
// comprehension is reading the task prompt (~4 s); orientation is
// scanning the interface (per visible widget) and shrinks as the
// participant completes more tasks (the Figure 13 learning effect);
// widget costs come from the §4.3 cost model with multiplicative noise.
func simulateTask(r *rand.Rand, cond Condition, task, order int) Observation {
	model := piModel
	if cond == SDSSForm {
		model = sdssModel
	}
	uses := model.perTask[task]
	if uses == nil {
		// Hand-written SQL fallback: most participants hit the 60 s cap.
		t := 52000 + r.Float64()*16000
		if t > timeCapMillis {
			t = timeCapMillis
		}
		return Observation{Condition: cond, Task: task, Order: order,
			Millis: t, Correct: r.Float64() < 0.35}
	}
	comprehension := 5000 + r.NormFloat64()*400
	learning := 1.0
	for i := 1; i < order; i++ {
		learning *= 0.62 // each completed task makes orientation much faster
	}
	orientation := float64(model.visibleWidgets) * 300 * learning
	interact := 0.0
	for _, u := range uses {
		jitter := 1 + r.NormFloat64()*0.15
		if jitter < 0.5 {
			jitter = 0.5
		}
		interact += u.typ.Cost.Eval(u.opts) * jitter
	}
	submit := 600 + r.Float64()*300
	t := comprehension + orientation + interact + submit
	if t > timeCapMillis {
		t = timeCapMillis
	}
	// Tasks with dedicated widgets are highly accurate under both
	// conditions ("task accuracies were identical for tasks 2-4").
	return Observation{Condition: cond, Task: task, Order: order,
		Millis: t, Correct: r.Float64() < 0.95}
}

// CellStat summarizes one (task, condition) cell of Figure 8c.
type CellStat struct {
	Task      int
	Condition Condition
	N         int
	MeanSecs  float64
	CI95Secs  float64 // 95% confidence half-interval
	Accuracy  float64
}

// Summarize computes the Figure 8c table from raw observations.
func Summarize(obs []Observation) []CellStat {
	type key struct {
		task int
		cond Condition
	}
	groups := map[key][]Observation{}
	for _, o := range obs {
		k := key{o.Task, o.Condition}
		groups[k] = append(groups[k], o)
	}
	var out []CellStat
	for task := 0; task < NumTasks; task++ {
		for _, cond := range []Condition{PrecisionInterface, SDSSForm} {
			g := groups[key{task, cond}]
			if len(g) == 0 {
				continue
			}
			mean, sd := meanStd(g)
			acc := 0.0
			for _, o := range g {
				if o.Correct {
					acc++
				}
			}
			out = append(out, CellStat{
				Task:      task,
				Condition: cond,
				N:         len(g),
				MeanSecs:  mean / 1000,
				CI95Secs:  1.96 * sd / sqrtf(len(g)) / 1000,
				Accuracy:  acc / float64(len(g)),
			})
		}
	}
	return out
}

// OrderCell is one point of Figure 13: mean time for a task when it was
// the participant's order-th task.
type OrderCell struct {
	Task      int
	Condition Condition
	Order     int
	MeanSecs  float64
	N         int
}

// ByOrder computes the Figure 13 series.
func ByOrder(obs []Observation) []OrderCell {
	type key struct {
		task, order int
		cond        Condition
	}
	sum := map[key]float64{}
	n := map[key]int{}
	for _, o := range obs {
		k := key{o.Task, o.Order, o.Condition}
		sum[k] += o.Millis
		n[k]++
	}
	var out []OrderCell
	for task := 0; task < NumTasks; task++ {
		for order := 1; order <= NumTasks; order++ {
			for _, cond := range []Condition{PrecisionInterface, SDSSForm} {
				k := key{task, order, cond}
				if n[k] == 0 {
					continue
				}
				out = append(out, OrderCell{
					Task: task, Condition: cond, Order: order,
					MeanSecs: sum[k] / float64(n[k]) / 1000, N: n[k],
				})
			}
		}
	}
	return out
}

func meanStd(g []Observation) (mean, sd float64) {
	for _, o := range g {
		mean += o.Millis
	}
	mean /= float64(len(g))
	if len(g) < 2 {
		return mean, 0
	}
	for _, o := range g {
		d := o.Millis - mean
		sd += d * d
	}
	sd /= float64(len(g) - 1)
	return mean, math.Sqrt(sd)
}

func sqrtf(n int) float64 { return math.Sqrt(float64(n)) }

// FormatCell renders a cell like the paper's reporting style, e.g.
// "9.3s ± 0.8".
func (c CellStat) FormatCell() string {
	return fmt.Sprintf("%.1fs ± %.1f (acc %.0f%%)", c.MeanSecs, c.CI95Secs, c.Accuracy*100)
}
