package study

import (
	"fmt"
	"math"
)

// The paper analyzes the study with an ANOVA using task, interface and
// order as independent variables and time as the dependent variable,
// reporting p ≤ 2e-12 for the main effects and p = 2e-16 for the
// task × interface interaction. This file implements the corresponding
// one-way F-tests for each factor and for the task × interface
// interaction cells, with exact F-distribution p-values via the
// regularized incomplete beta function (stdlib only).

// FTest is one factor's ANOVA result.
type FTest struct {
	Factor string
	F      float64
	DF1    int // between-groups degrees of freedom
	DF2    int // within-groups degrees of freedom
	P      float64
}

func (t FTest) String() string {
	return fmt.Sprintf("%s: F(%d,%d) = %.1f, p = %.3g", t.Factor, t.DF1, t.DF2, t.F, t.P)
}

// Anova runs the factor tests over the observations. Task, interface
// and their interaction are tested directly; the order effect is tested
// on residuals after removing the task × interface cell means (the
// adjusted main-effect test — a raw one-way test over order would be
// swamped by the 60 s Task-1 cells, which a full factorial ANOVA like
// the paper's controls for).
func Anova(obs []Observation) []FTest {
	task := func(o Observation) int { return o.Task }
	iface := func(o Observation) int { return int(o.Condition) }
	order := func(o Observation) int { return o.Order }
	interact := func(o Observation) int { return o.Task*10 + int(o.Condition) }
	return []FTest{
		oneWay("task", obs, task),
		oneWay("interface", obs, iface),
		oneWay("order", residualize(obs, interact), order),
		oneWay("task x interface", obs, interact),
	}
}

// residualize subtracts per-group means, removing that grouping's
// effect from the response.
func residualize(obs []Observation, key func(Observation) int) []Observation {
	sum := map[int]float64{}
	n := map[int]int{}
	for _, o := range obs {
		sum[key(o)] += o.Millis
		n[key(o)]++
	}
	out := make([]Observation, len(obs))
	for i, o := range obs {
		o.Millis -= sum[key(o)] / float64(n[key(o)])
		out[i] = o
	}
	return out
}

// oneWay computes a one-way ANOVA F-test grouping observations by key.
func oneWay(name string, obs []Observation, key func(Observation) int) FTest {
	groups := map[int][]float64{}
	grand, n := 0.0, 0
	for _, o := range obs {
		groups[key(o)] = append(groups[key(o)], o.Millis)
		grand += o.Millis
		n++
	}
	grand /= float64(n)
	ssb, ssw := 0.0, 0.0
	for _, g := range groups {
		m := 0.0
		for _, v := range g {
			m += v
		}
		m /= float64(len(g))
		ssb += float64(len(g)) * (m - grand) * (m - grand)
		for _, v := range g {
			ssw += (v - m) * (v - m)
		}
	}
	df1 := len(groups) - 1
	df2 := n - len(groups)
	if df1 <= 0 || df2 <= 0 || ssw == 0 {
		return FTest{Factor: name, DF1: df1, DF2: df2, F: math.Inf(1), P: 0}
	}
	f := (ssb / float64(df1)) / (ssw / float64(df2))
	return FTest{Factor: name, F: f, DF1: df1, DF2: df2, P: fSurvival(f, df1, df2)}
}

// fSurvival returns P(F > f) for an F(d1, d2) distribution:
// I_{d2/(d2 + d1 f)}(d2/2, d1/2).
func fSurvival(f float64, d1, d2 int) float64 {
	if f <= 0 {
		return 1
	}
	x := float64(d2) / (float64(d2) + float64(d1)*f)
	return regIncBeta(float64(d2)/2, float64(d1)/2, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// via the standard continued-fraction expansion (Lentz's method).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lnGamma(a+b) - lnGamma(a) - lnGamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function (Numerical Recipes' betacf).
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// lnGamma is the Lanczos approximation of ln Γ(x).
func lnGamma(x float64) float64 {
	g, _ := math.Lgamma(x)
	return g
}
