package study

import (
	"math"
	"testing"
)

func cells(t *testing.T) map[[2]int]CellStat {
	t.Helper()
	obs := Run(DefaultConfig())
	out := map[[2]int]CellStat{}
	for _, c := range Summarize(obs) {
		out[[2]int{c.Task, int(c.Condition)}] = c
	}
	return out
}

// TestFig8cShape pins the headline study findings.
func TestFig8cShape(t *testing.T) {
	cs := cells(t)
	// Task 1: SDSS form has no objectId widgets -> near the 60 s cap;
	// the generated interface stays near the other tasks' times.
	sdss1 := cs[[2]int{TaskObjectID, int(SDSSForm)}]
	pi1 := cs[[2]int{TaskObjectID, int(PrecisionInterface)}]
	if sdss1.MeanSecs < 50 {
		t.Fatalf("SDSS Task 1 mean = %.1fs, want ≈60s", sdss1.MeanSecs)
	}
	if pi1.MeanSecs > 20 {
		t.Fatalf("PI Task 1 mean = %.1fs, want ≈10s", pi1.MeanSecs)
	}
	// Tasks 2-4: PI slightly faster than SDSS under both conditions.
	for task := TaskArea; task <= TaskRedshift; task++ {
		pi := cs[[2]int{task, int(PrecisionInterface)}]
		sd := cs[[2]int{task, int(SDSSForm)}]
		if pi.MeanSecs >= sd.MeanSecs {
			t.Errorf("task %d: PI %.1fs not faster than SDSS %.1fs", task, pi.MeanSecs, sd.MeanSecs)
		}
		if sd.MeanSecs > 25 {
			t.Errorf("task %d: SDSS mean %.1fs implausibly slow", task, sd.MeanSecs)
		}
		// "The task accuracies were identical for tasks 2-4": both high.
		if pi.Accuracy < 0.8 || sd.Accuracy < 0.8 {
			t.Errorf("task %d accuracies too low: %v vs %v", task, pi.Accuracy, sd.Accuracy)
		}
	}
	// Task 1 accuracy gap: hand-written SQL is error-prone.
	if sdss1.Accuracy >= pi1.Accuracy {
		t.Errorf("SDSS task1 accuracy %.2f should trail PI %.2f", sdss1.Accuracy, pi1.Accuracy)
	}
}

// TestFig13LearningEffect: times fall with order for widget tasks, and
// do NOT fall for SDSS Task 1 (cap dominates).
func TestFig13LearningEffect(t *testing.T) {
	obs := Run(DefaultConfig())
	byOrder := ByOrder(obs)
	get := func(task int, cond Condition, order int) (float64, bool) {
		for _, c := range byOrder {
			if c.Task == task && c.Condition == cond && c.Order == order {
				return c.MeanSecs, true
			}
		}
		return 0, false
	}
	// PI Task 2 first-vs-last: learning should shave seconds.
	if first, ok1 := get(TaskArea, PrecisionInterface, 1); ok1 {
		if last, ok2 := get(TaskArea, PrecisionInterface, 4); ok2 {
			if last >= first {
				t.Errorf("no learning effect: order1=%.1fs order4=%.1fs", first, last)
			}
		}
	}
	// SDSS Task 1 stays at the cap regardless of order.
	for order := 1; order <= 4; order++ {
		if v, ok := get(TaskObjectID, SDSSForm, order); ok && v < 50 {
			t.Errorf("SDSS task1 at order %d = %.1fs, should stay near cap", order, v)
		}
	}
}

func TestRunDeterministicAndBalanced(t *testing.T) {
	a := Run(DefaultConfig())
	b := Run(DefaultConfig())
	if len(a) != len(b) || len(a) != 40*NumTasks {
		t.Fatalf("observations = %d, want %d", len(a), 40*NumTasks)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("simulation not deterministic")
		}
	}
	n := map[Condition]int{}
	for _, o := range a {
		n[o.Condition]++
		if o.Millis <= 0 || o.Millis > timeCapMillis {
			t.Fatalf("time out of range: %v", o.Millis)
		}
		if o.Order < 1 || o.Order > NumTasks {
			t.Fatalf("order out of range: %d", o.Order)
		}
	}
	if n[PrecisionInterface] != n[SDSSForm] {
		t.Fatalf("unbalanced assignment: %v", n)
	}
}

// TestAnovaSignificance mirrors the paper's test: all three factors and
// the task × interface interaction are significant.
func TestAnovaSignificance(t *testing.T) {
	obs := Run(DefaultConfig())
	for _, ft := range Anova(obs) {
		if math.IsNaN(ft.F) || ft.F <= 0 {
			t.Errorf("%s: bad F", ft)
		}
		if ft.P > 1e-3 {
			t.Errorf("%s: not significant (paper reports p <= 2e-12)", ft)
		}
	}
}

// TestFDistribution sanity-checks the p-value machinery against known
// values: P(F(1,10) > 4.96) ≈ 0.05 and P(F(2,20) > 3.49) ≈ 0.05.
func TestFDistribution(t *testing.T) {
	cases := []struct {
		f      float64
		d1, d2 int
		want   float64
	}{
		{4.96, 1, 10, 0.05},
		{3.49, 2, 20, 0.05},
		{1.0, 5, 5, 0.5},
	}
	for _, c := range cases {
		got := fSurvival(c.f, c.d1, c.d2)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("fSurvival(%v, %d, %d) = %v, want ≈%v", c.f, c.d1, c.d2, got, c.want)
		}
	}
	if got := fSurvival(0, 3, 3); got != 1 {
		t.Errorf("fSurvival(0) = %v", got)
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := regIncBeta(2, 3, 0.4) + regIncBeta(3, 2, 0.6); math.Abs(got-1) > 1e-10 {
		t.Errorf("symmetry violated: %v", got)
	}
	if regIncBeta(2, 2, 0) != 0 || regIncBeta(2, 2, 1) != 1 {
		t.Error("boundary values wrong")
	}
}

func TestSummaryFormatting(t *testing.T) {
	c := CellStat{Task: 1, Condition: PrecisionInterface, N: 20, MeanSecs: 9.3, CI95Secs: 0.8, Accuracy: 0.95}
	if got := c.FormatCell(); got != "9.3s ± 0.8 (acc 95%)" {
		t.Fatalf("FormatCell = %q", got)
	}
}
