package vis

import (
	"repro/internal/ast"
	"repro/internal/sqlparser"
)

// parse adapts the sqlparser for engine.ExecSQL in tests.
func parse(sql string) (*ast.Node, error) { return sqlparser.Parse(sql) }
