// Package vis is the render() substrate of §3.3: "render() either
// generates a simple visualization [30, 31] or renders a table". It
// implements a small ShowMe/APT-style rule engine that inspects the
// result relation's column types and cardinalities and picks an
// encoding — bar chart for one categorical + one quantitative column,
// line chart for ordered quantitative x, scatter for two quantitative
// columns, table otherwise — and renders the choice as a standalone
// SVG (charts) or ASCII grid (tables).
package vis

import (
	"fmt"
	"html"
	"math"
	"strings"

	"repro/internal/engine"
)

// ChartKind enumerates the supported encodings.
type ChartKind int

const (
	KindTable ChartKind = iota
	KindBar
	KindLine
	KindScatter
)

func (k ChartKind) String() string {
	switch k {
	case KindBar:
		return "bar"
	case KindLine:
		return "line"
	case KindScatter:
		return "scatter"
	}
	return "table"
}

// Spec is the chosen visualization: the chart kind and the column
// indices bound to the x and y channels (-1 when unused).
type Spec struct {
	Kind ChartKind
	X, Y int
}

// colProfile summarizes one column for the chooser.
type colProfile struct {
	numeric  bool // every non-null value is numeric
	distinct int
	ordered  bool // values appear in non-decreasing order (numeric only)
}

func profile(t *engine.Table, col int) colProfile {
	p := colProfile{numeric: true, ordered: true}
	seen := map[string]bool{}
	prev := math.Inf(-1)
	for _, row := range t.Rows {
		v := row[col]
		if v.IsNull() {
			continue
		}
		seen[v.Key()] = true
		f, ok := v.AsNumber()
		if !ok || v.Kind == engine.KindString {
			p.numeric = false
			p.ordered = false
			continue
		}
		if f < prev {
			p.ordered = false
		}
		prev = f
	}
	p.distinct = len(seen)
	return p
}

// Choose picks an encoding for a result relation, following the
// priority rules of automatic presentation systems:
//
//  1. categorical x (small cardinality) + quantitative y → bar;
//  2. ordered quantitative x + quantitative y → line;
//  3. two quantitative columns → scatter;
//  4. anything else → table.
func Choose(t *engine.Table) Spec {
	if len(t.Cols) < 2 || len(t.Rows) == 0 {
		return Spec{Kind: KindTable, X: -1, Y: -1}
	}
	profiles := make([]colProfile, len(t.Cols))
	for i := range t.Cols {
		profiles[i] = profile(t, i)
	}
	// First quantitative column to serve as y.
	yFor := func(notCol int) int {
		for i, p := range profiles {
			if i != notCol && p.numeric && p.distinct > 0 {
				return i
			}
		}
		return -1
	}
	// Rule 1: categorical + quantitative → bar.
	for x, p := range profiles {
		if !p.numeric && p.distinct > 0 && p.distinct <= 24 {
			if y := yFor(x); y >= 0 {
				return Spec{Kind: KindBar, X: x, Y: y}
			}
		}
	}
	// Rule 2: ordered quantitative x → line.
	for x, p := range profiles {
		if p.numeric && p.ordered && p.distinct > 2 {
			if y := yFor(x); y >= 0 {
				return Spec{Kind: KindLine, X: x, Y: y}
			}
		}
	}
	// Rule 3: two quantitative columns → scatter.
	for x, p := range profiles {
		if p.numeric && p.distinct > 1 {
			if y := yFor(x); y >= 0 {
				return Spec{Kind: KindScatter, X: x, Y: y}
			}
		}
	}
	return Spec{Kind: KindTable, X: -1, Y: -1}
}

// Render visualizes the relation with the automatically chosen
// encoding: SVG for charts, the ASCII grid for tables.
func Render(t *engine.Table) string {
	spec := Choose(t)
	if spec.Kind == KindTable {
		return t.Render()
	}
	return RenderSVG(t, spec, 480, 280)
}

// RenderSVG renders a chart spec as a standalone SVG document.
func RenderSVG(t *engine.Table, spec Spec, width, height int) string {
	const margin = 40
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		margin, margin, margin, height-margin)
	// Axis labels from column names.
	if spec.X >= 0 && spec.X < len(t.Cols) {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>`,
			width/2, height-8, html.EscapeString(t.Cols[spec.X]))
	}
	if spec.Y >= 0 && spec.Y < len(t.Cols) {
		fmt.Fprintf(&b, `<text x="12" y="%d" font-size="11" text-anchor="middle" transform="rotate(-90 12 %d)">%s</text>`,
			height/2, height/2, html.EscapeString(t.Cols[spec.Y]))
	}

	ys := numericColumn(t, spec.Y)
	ymin, ymax := bounds(ys)
	scaleY := func(v float64) float64 {
		if ymax == ymin {
			return float64(height-margin) - plotH/2
		}
		return float64(height-margin) - (v-ymin)/(ymax-ymin)*plotH
	}

	switch spec.Kind {
	case KindBar:
		n := len(t.Rows)
		if n == 0 {
			break
		}
		bw := plotW / float64(n)
		for i, row := range t.Rows {
			v, _ := row[spec.Y].AsNumber()
			x := float64(margin) + float64(i)*bw
			y := scaleY(v)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#4477aa"/>`,
				x+1, y, bw-2, float64(height-margin)-y)
			label := row[spec.X].String()
			if len(label) > 8 {
				label = label[:8]
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="9" text-anchor="middle">%s</text>`,
				x+bw/2, height-margin+12, html.EscapeString(label))
		}
	case KindLine, KindScatter:
		xs := numericColumn(t, spec.X)
		xmin, xmax := bounds(xs)
		scaleX := func(v float64) float64 {
			if xmax == xmin {
				return float64(margin) + plotW/2
			}
			return float64(margin) + (v-xmin)/(xmax-xmin)*plotW
		}
		var pts []string
		for i := range t.Rows {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", scaleX(xs[i]), scaleY(ys[i])))
		}
		if spec.Kind == KindLine {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#4477aa" stroke-width="1.5"/>`,
				strings.Join(pts, " "))
		}
		for _, p := range pts {
			xy := strings.SplitN(p, ",", 2)
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="#4477aa"/>`, xy[0], xy[1])
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func numericColumn(t *engine.Table, col int) []float64 {
	out := make([]float64, len(t.Rows))
	if col < 0 {
		return out
	}
	for i, row := range t.Rows {
		out[i], _ = row[col].AsNumber()
	}
	return out
}

func bounds(vs []float64) (lo, hi float64) {
	if len(vs) == 0 {
		return 0, 1
	}
	lo, hi = vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > 0 {
		lo = 0 // bars anchor at zero
	}
	return lo, hi
}
