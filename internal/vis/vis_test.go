package vis

import (
	"strings"
	"testing"

	"repro/internal/engine"
)

func barTable() *engine.Table {
	t := engine.NewTable("r", "state", "total")
	t.MustAddRow(engine.Str("CA"), engine.Num(120))
	t.MustAddRow(engine.Str("NY"), engine.Num(80))
	t.MustAddRow(engine.Str("TX"), engine.Num(95))
	return t
}

func TestChooseBar(t *testing.T) {
	spec := Choose(barTable())
	if spec.Kind != KindBar || spec.X != 0 || spec.Y != 1 {
		t.Fatalf("spec = %+v, want bar(state, total)", spec)
	}
}

func TestChooseLine(t *testing.T) {
	tbl := engine.NewTable("r", "day", "delay")
	for d := 1; d <= 10; d++ {
		tbl.MustAddRow(engine.Num(float64(d)), engine.Num(float64(d*d%7)))
	}
	spec := Choose(tbl)
	if spec.Kind != KindLine || spec.X != 0 || spec.Y != 1 {
		t.Fatalf("spec = %+v, want line(day, delay)", spec)
	}
}

func TestChooseScatter(t *testing.T) {
	tbl := engine.NewTable("r", "x", "y")
	// Unordered x kills the line rule.
	for _, v := range []float64{5, 1, 9, 3, 7} {
		tbl.MustAddRow(engine.Num(v), engine.Num(v*2))
	}
	spec := Choose(tbl)
	if spec.Kind != KindScatter {
		t.Fatalf("spec = %+v, want scatter", spec)
	}
}

func TestChooseTableFallbacks(t *testing.T) {
	// One column: table.
	one := engine.NewTable("r", "a")
	one.MustAddRow(engine.Num(1))
	if spec := Choose(one); spec.Kind != KindTable {
		t.Fatalf("one column -> %v", spec.Kind)
	}
	// Empty: table.
	if spec := Choose(engine.NewTable("r", "a", "b")); spec.Kind != KindTable {
		t.Fatalf("empty -> %v", spec.Kind)
	}
	// Two string columns: table.
	ss := engine.NewTable("r", "a", "b")
	ss.MustAddRow(engine.Str("x"), engine.Str("y"))
	ss.MustAddRow(engine.Str("p"), engine.Str("q"))
	if spec := Choose(ss); spec.Kind != KindTable {
		t.Fatalf("two strings -> %v", spec.Kind)
	}
	// High-cardinality categorical falls through to table (no y pairing
	// with 30+ bars).
	hc := engine.NewTable("r", "id", "name")
	for i := 0; i < 30; i++ {
		hc.MustAddRow(engine.Str(strings.Repeat("x", i+1)), engine.Str("n"))
	}
	if spec := Choose(hc); spec.Kind != KindTable {
		t.Fatalf("high-cardinality strings -> %v", spec.Kind)
	}
}

func TestRenderSVGWellFormed(t *testing.T) {
	svg := RenderSVG(barTable(), Spec{Kind: KindBar, X: 0, Y: 1}, 480, 280)
	for _, frag := range []string{"<svg", "</svg>", "<rect", "CA", "state", "total"} {
		if !strings.Contains(svg, frag) {
			t.Errorf("svg missing %q", frag)
		}
	}
	if strings.Count(svg, "<rect") < 4 { // background + 3 bars
		t.Fatalf("expected 3 bars, svg: %s", svg)
	}
}

func TestRenderSVGEscapes(t *testing.T) {
	tbl := engine.NewTable("r", "<script>", "y")
	tbl.MustAddRow(engine.Str("<b>"), engine.Num(1))
	svg := RenderSVG(tbl, Spec{Kind: KindBar, X: 0, Y: 1}, 200, 200)
	if strings.Contains(svg, "<script>") || strings.Contains(svg, "><b><") {
		t.Fatal("unescaped content in SVG")
	}
}

func TestRenderDispatch(t *testing.T) {
	// Chart case yields SVG; table case yields the ASCII grid.
	if out := Render(barTable()); !strings.HasPrefix(out, "<svg") {
		t.Fatalf("bar table should render SVG, got %q", out[:20])
	}
	ss := engine.NewTable("r", "a", "b")
	ss.MustAddRow(engine.Str("x"), engine.Str("y"))
	if out := Render(ss); strings.HasPrefix(out, "<svg") {
		t.Fatal("string table should render as grid")
	}
}

func TestRenderSVGDegenerate(t *testing.T) {
	// Constant y must not divide by zero.
	tbl := engine.NewTable("r", "k", "v")
	tbl.MustAddRow(engine.Str("a"), engine.Num(5))
	tbl.MustAddRow(engine.Str("b"), engine.Num(5))
	svg := RenderSVG(tbl, Spec{Kind: KindBar, X: 0, Y: 1}, 200, 200)
	if !strings.Contains(svg, "</svg>") || strings.Contains(svg, "NaN") {
		t.Fatalf("degenerate chart broken: %s", svg)
	}
	// Line with single point.
	p := engine.NewTable("r", "x", "y")
	p.MustAddRow(engine.Num(1), engine.Num(2))
	svg2 := RenderSVG(p, Spec{Kind: KindLine, X: 0, Y: 1}, 200, 200)
	if strings.Contains(svg2, "NaN") {
		t.Fatal("NaN in single-point line chart")
	}
}

// End to end: an executed OLAP query renders as a bar chart.
func TestEndToEndWithEngine(t *testing.T) {
	db := engine.OnTimeDB(500)
	// deststate (categorical) + count (quantitative).
	res, err := engine.ExecSQL(db, parse, "SELECT deststate, COUNT(*) FROM ontime GROUP BY deststate")
	if err != nil {
		t.Fatal(err)
	}
	spec := Choose(res)
	if spec.Kind != KindBar {
		t.Fatalf("OLAP result should chart as bars, got %v", spec.Kind)
	}
	if svg := Render(res); !strings.HasPrefix(svg, "<svg") {
		t.Fatal("render did not produce SVG")
	}
}
